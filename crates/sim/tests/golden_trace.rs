//! Golden-trace regression for the round loop.
//!
//! The simulator promises bit-for-bit determinism: the same seed, initial
//! state and policy replay the exact same computation. The measurement
//! loop (`run_to_ring`) additionally promises that *how* it observes the
//! network (snapshot clones vs. borrowing views, reclassification vs.
//! dirty-skipping) never changes the computation it observes.
//!
//! This test pins both promises to a fixture captured from the original
//! snapshot-per-round implementation: per-scenario phase milestones,
//! message totals, a per-round sent/delivered prefix, and an order-stable
//! digest of the final global state (node variables *and* channel
//! contents). Any refactor of `Network::step`, `Channel` storage or the
//! convergence loop that perturbs a single message or RNG draw shows up
//! as a digest mismatch.
//!
//! Scenarios use the `Immediate` policy only: that is the policy the
//! convergence measurements run under, and `RandomDelay` traces are
//! allowed to change when the fairness bound itself is fixed/retuned.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p swn-sim --test
//! golden_trace` after an *intentional* trace-affecting change, and say
//! why in the commit message.

use serde::{Deserialize, Serialize};
use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, Extended};
use swn_sim::convergence::run_to_ring;
use swn_sim::init::{generate, InitialTopology};
use swn_sim::obs::{Event, MemorySink, Record};
use swn_sim::Network;

/// How many leading rounds get their (sent, delivered) pair recorded.
const ROUND_PREFIX: usize = 40;

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ScenarioSig {
    label: String,
    rounds_to_lcc: Option<u64>,
    rounds_to_list: Option<u64>,
    rounds_to_ring: Option<u64>,
    messages_to_ring: u64,
    monotone: bool,
    rounds_run: u64,
    total_sent: u64,
    total_delivered: u64,
    round_prefix: Vec<(u64, u64)>,
    state_digest: u64,
}

/// FNV-1a over a stream of u64 words.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn encode_extended(e: Extended) -> u64 {
    match e {
        Extended::NegInf => 1,
        Extended::PosInf => 2,
        Extended::Fin(id) => id.bits().wrapping_mul(2).wrapping_add(3),
    }
}

/// Order-stable digest of the full global state: every node's variables
/// (ascending id order) plus its channel contents in queue order.
fn state_digest(net: &Network) -> u64 {
    let s = net.snapshot();
    let mut d = Digest::new();
    let order = s.sorted_indices();
    for &i in &order {
        let n = &s.nodes()[i];
        d.push(n.id().bits());
        d.push(encode_extended(n.left()));
        d.push(encode_extended(n.right()));
        d.push(n.lrl().bits());
        d.push(n.ring().map_or(0, |r| r.bits().wrapping_add(1)));
        d.push(n.age());
        d.push(n.probe_tick());
        let ch = &s.channels()[i];
        d.push(ch.len() as u64);
        for m in ch {
            d.push(m.kind().index() as u64 + 1);
            for id in m.carried_ids() {
                d.push(id.bits());
            }
        }
    }
    d.0
}

fn trace_totals(net: &Network) -> (u64, u64, Vec<(u64, u64)>) {
    let prefix = net
        .trace()
        .rounds()
        .iter()
        .take(ROUND_PREFIX)
        .map(|r| (r.total_sent(), r.total_delivered()))
        .collect();
    (
        net.trace().total_sent(),
        net.trace().total_delivered(),
        prefix,
    )
}

fn convergence_scenario(family: InitialTopology, n: usize, seed: u64) -> ScenarioSig {
    let ids = evenly_spaced_ids(n);
    let mut net = generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
    let rep = run_to_ring(&mut net, 100_000);
    let (total_sent, total_delivered, round_prefix) = trace_totals(&net);
    ScenarioSig {
        label: format!("{}/n{}/s{}", family.label(), n, seed),
        rounds_to_lcc: rep.rounds_to_lcc,
        rounds_to_list: rep.rounds_to_list,
        rounds_to_ring: rep.rounds_to_ring,
        messages_to_ring: rep.messages_to_ring,
        monotone: rep.monotone,
        rounds_run: rep.rounds_run,
        total_sent,
        total_delivered,
        round_prefix,
        state_digest: state_digest(&net),
    }
}

/// Churn scenario: a stable ring loses an interior node mid-run; the
/// bounce/drop handling and departure detection must replay identically.
fn churn_scenario(n: usize, seed: u64) -> ScenarioSig {
    let ids = evenly_spaced_ids(n);
    let mut net = Network::new(
        swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default()),
        seed,
    );
    net.run(10);
    let victim = net.ids()[n / 2];
    net.remove_node(victim);
    net.run(50);
    let (total_sent, total_delivered, round_prefix) = trace_totals(&net);
    ScenarioSig {
        label: format!("churn/n{n}/s{seed}"),
        rounds_to_lcc: None,
        rounds_to_list: None,
        rounds_to_ring: None,
        messages_to_ring: 0,
        monotone: true,
        rounds_run: net.round(),
        total_sent,
        total_delivered,
        round_prefix,
        state_digest: state_digest(&net),
    }
}

fn all_scenarios() -> Vec<ScenarioSig> {
    vec![
        convergence_scenario(InitialTopology::RandomSparse { extra: 3 }, 24, 4),
        convergence_scenario(InitialTopology::Star, 16, 3),
        convergence_scenario(InitialTopology::Clique, 20, 6),
        convergence_scenario(InitialTopology::TwoBlobs, 20, 5),
        convergence_scenario(InitialTopology::CorruptedRing { corruptions: 5 }, 20, 7),
        churn_scenario(12, 9),
    ]
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("roundloop_golden.json")
}

/// Signature of the observation event stream for one scenario: record
/// count, the convergence timeline, and a structural digest over every
/// event. Wall-clock payloads (`PhaseTimes` durations) are *excluded*
/// from the digest — only their round numbers are hashed — so the
/// signature is deterministic while still pinning that sampling fires on
/// exactly the same rounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ObsSig {
    label: String,
    records: usize,
    transitions: Vec<(String, u64)>,
    event_digest: u64,
}

fn push_str(d: &mut Digest, s: &str) {
    d.push(s.len() as u64);
    for b in s.bytes() {
        d.push(u64::from(b));
    }
}

fn push_hist(d: &mut Digest, h: &swn_sim::obs::Histogram) {
    d.push(h.count());
    d.push(h.sum());
    d.push(h.max());
    for &b in h.buckets() {
        d.push(b);
    }
}

fn event_digest(records: &[Record]) -> u64 {
    let mut d = Digest::new();
    for rec in records {
        d.push(u64::from(rec.v));
        match &rec.event {
            Event::RunMeta {
                n,
                seed,
                policy,
                sample_every,
                round,
            } => {
                d.push(1);
                d.push(*n as u64);
                d.push(*seed);
                push_str(&mut d, policy);
                d.push(*sample_every);
                d.push(*round);
            }
            Event::Round {
                round,
                sent,
                delivered,
                dropped,
                bounced,
                depth_max,
            } => {
                d.push(2);
                d.push(*round);
                for &s in sent {
                    d.push(s);
                }
                d.push(*delivered);
                d.push(*dropped);
                d.push(*bounced);
                d.push(*depth_max);
            }
            // Durations are wall clock — nondeterministic by nature.
            // Only the fact that this round was sampled is pinned.
            Event::PhaseTimes { round, .. } => {
                d.push(3);
                d.push(*round);
            }
            Event::Transition { round, phase } => {
                d.push(4);
                d.push(*round);
                push_str(&mut d, phase);
            }
            Event::Span { label, start, end } => {
                d.push(5);
                push_str(&mut d, label);
                d.push(*start);
                d.push(*end);
            }
            // Never emitted on fault-free runs, so the golden digests are
            // unchanged; hashed anyway so fault scenarios can pin streams.
            Event::Fault {
                round,
                kind,
                detail,
            } => {
                d.push(7);
                d.push(*round);
                push_str(&mut d, kind);
                push_str(&mut d, detail);
            }
            Event::Verdict {
                round,
                outcome,
                detail,
            } => {
                d.push(8);
                d.push(*round);
                push_str(&mut d, outcome);
                push_str(&mut d, detail);
            }
            Event::Summary {
                rounds,
                total_sent,
                latency,
                depth,
                forget_age,
                lrl_len,
                latency_by_kind,
                cascade_depth,
            } => {
                d.push(6);
                d.push(*rounds);
                d.push(*total_sent);
                push_hist(&mut d, latency);
                push_hist(&mut d, depth);
                push_hist(&mut d, forget_age);
                push_hist(&mut d, lrl_len);
                for h in latency_by_kind {
                    push_hist(&mut d, h);
                }
                push_hist(&mut d, cascade_depth);
            }
            // Emitted by the fault watchdog's cascade bracket; hashed
            // so fault scenarios can pin their causal streams.
            Event::Cascade {
                label,
                start,
                end,
                delivered,
                roots,
                edges,
                depth,
                width_max,
                handled_by_kind,
                children_by_kind,
            } => {
                d.push(9);
                push_str(&mut d, label);
                d.push(*start);
                d.push(*end);
                d.push(*delivered);
                d.push(*roots);
                d.push(*edges);
                push_hist(&mut d, depth);
                d.push(*width_max);
                for &c in handled_by_kind {
                    d.push(c);
                }
                for &c in children_by_kind {
                    d.push(c);
                }
            }
        }
    }
    d.0
}

/// The first convergence scenario re-run with a sink attached (sampling
/// every 8 rounds). Returns the scenario signature — which must equal
/// the *unobserved* run's bit for bit — plus the event-stream signature.
fn observed_scenario() -> (ScenarioSig, ObsSig) {
    let family = InitialTopology::RandomSparse { extra: 3 };
    let (n, seed) = (24, 4);
    let ids = evenly_spaced_ids(n);
    let mut net = generate(family, &ids, ProtocolConfig::default(), seed).into_network(seed);
    let (sink, records) = MemorySink::new();
    net.attach_sink(Box::new(sink), 8);
    let rep = run_to_ring(&mut net, 100_000);
    net.detach_sink();
    let (total_sent, total_delivered, round_prefix) = trace_totals(&net);
    let sig = ScenarioSig {
        label: format!("{}/n{}/s{}", family.label(), n, seed),
        rounds_to_lcc: rep.rounds_to_lcc,
        rounds_to_list: rep.rounds_to_list,
        rounds_to_ring: rep.rounds_to_ring,
        messages_to_ring: rep.messages_to_ring,
        monotone: rep.monotone,
        rounds_run: rep.rounds_run,
        total_sent,
        total_delivered,
        round_prefix,
        state_digest: state_digest(&net),
    };
    let records = records.lock().expect("records");
    let transitions = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::Transition { round, phase } => Some((phase.clone(), *round)),
            _ => None,
        })
        .collect();
    let obs = ObsSig {
        label: sig.label.clone(),
        records: records.len(),
        transitions,
        event_digest: event_digest(&records.snapshot()),
    };
    (sig, obs)
}

fn obs_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("obs_events_golden.json")
}

/// Pins the two halves of the observability determinism contract:
/// 1. An observed run is bit-for-bit the run the *unobserved* golden
///    fixture records — instrumentation consumes no RNG and never
///    perturbs the round loop.
/// 2. The emitted event stream itself is golden: same records, same
///    sampled rounds, same timeline, same histograms, every run.
#[test]
fn instrumented_run_matches_golden_and_event_stream_is_golden() {
    let (sig, obs) = observed_scenario();
    let path = obs_fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string(&obs).expect("serialize obs fixture");
        std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
            .expect("create golden dir");
        std::fs::write(&path, json).expect("write obs fixture");
        eprintln!("obs-events fixture regenerated at {}", path.display());
        return;
    }
    // Half 1: against the *unobserved* round-loop fixture.
    let json = std::fs::read_to_string(fixture_path()).expect("round-loop fixture present");
    let expected: Vec<ScenarioSig> = serde_json::from_str(&json).expect("parse golden fixture");
    let unobserved = expected
        .iter()
        .find(|s| s.label == sig.label)
        .expect("observed scenario is part of the golden set");
    assert_eq!(
        unobserved, &sig,
        "attaching a sink changed the computation: observers must read, \
         never mutate, and consume no RNG"
    );
    // Half 2: the event stream against its own fixture.
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing obs fixture {}: {e}", path.display()));
    let expected: ObsSig = serde_json::from_str(&json).expect("parse obs fixture");
    assert_eq!(
        expected, obs,
        "the emitted observation event stream diverged from the recorded one"
    );
}

#[test]
fn round_loop_replays_the_golden_traces() {
    let actual = all_scenarios();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string(&actual).expect("serialize golden fixture");
        std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
            .expect("create golden dir");
        std::fs::write(&path, json).expect("write golden fixture");
        eprintln!("golden fixture regenerated at {}", path.display());
        return;
    }
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    let expected: Vec<ScenarioSig> = serde_json::from_str(&json).expect("parse golden fixture");
    assert_eq!(
        expected.len(),
        actual.len(),
        "scenario list changed; regenerate with UPDATE_GOLDEN=1"
    );
    for (exp, act) in expected.iter().zip(&actual) {
        assert_eq!(
            exp, act,
            "golden trace diverged for scenario {}: the round loop is no \
             longer bit-for-bit identical to the recorded implementation",
            exp.label
        );
    }
}
