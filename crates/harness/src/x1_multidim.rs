//! **X1 — Extension: multidimensional move-and-forget navigability**
//! (the paper's Conclusion names k-D small worlds as the direct future
//! work; its substrate [4] is already dimension-generic).
//!
//! For k ∈ {1, 2, 3} tori of comparable size, run the k-dimensional
//! move-and-forget process and compare greedy routing against the bare
//! lattice. Shapes to verify: (a) the process improves navigability in
//! every dimension — the state a future k-D self-stabilization would
//! converge to is worth converging to; (b) the forget rate is identical
//! across k, confirming the dimension-independence of φ(α) that
//! Section III.D highlights.

use crate::table::{f2, f3, Table};
use swn_baselines::torus::{Torus, TorusMoveForget};

/// Parameters for X1.
#[derive(Clone, Debug)]
pub struct Params {
    /// (side, dim) pairs, chosen for comparable node counts.
    pub tori: Vec<(usize, usize)>,
    /// Move-and-forget warmup rounds.
    pub warmup: u64,
    /// Routing pairs per measurement.
    pub pairs: usize,
    /// Forget exponent.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run: ~1000 nodes per dimension.
    pub fn full() -> Self {
        Params {
            tori: vec![(1024, 1), (32, 2), (10, 3)],
            warmup: 20_000,
            pairs: 500,
            epsilon: 0.1,
        }
    }

    /// Reduced scale: ~250 nodes per dimension.
    pub fn quick() -> Self {
        Params {
            tori: vec![(256, 1), (16, 2), (6, 3)],
            warmup: 4_000,
            pairs: 150,
            epsilon: 0.1,
        }
    }
}

/// One dimension's measurement.
#[derive(Clone, Copy, Debug)]
pub struct DimPoint {
    /// Torus dimension.
    pub k: usize,
    /// Node count.
    pub n: usize,
    /// Mean greedy hops on the bare lattice.
    pub lattice_hops: f64,
    /// Mean greedy hops on the move-and-forget graph.
    pub mf_hops: f64,
    /// Forget events per node per round.
    pub forget_rate: f64,
}

/// Runs the sweep.
pub fn measure(p: &Params) -> Vec<DimPoint> {
    p.tori
        .iter()
        .map(|&(m, k)| {
            let torus = Torus::new(m, k);
            let n = torus.len();
            let lattice_hops = torus.mean_greedy_hops(&torus.lattice_graph(), p.pairs, 1);
            let mut mf = TorusMoveForget::new(torus, p.epsilon, 9 + k as u64);
            mf.run(p.warmup);
            let forget_rate = mf.forgets() as f64 / (p.warmup as f64 * n as f64);
            let torus = mf.torus().clone();
            let mf_hops = torus.mean_greedy_hops(&mf.graph(), p.pairs, 2);
            DimPoint {
                k,
                n,
                lattice_hops,
                mf_hops,
                forget_rate,
            }
        })
        .collect()
}

/// Runs X1 and renders the table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "X1  Multidimensional move-and-forget (extension)",
        "the process improves navigability in every dimension; the forget rate is dimension-independent \
         (paper's future work; substrate [4] is k-generic)",
        &["k", "n", "lattice hops", "mf hops", "speedup", "forgets/node/rd"],
    );
    for pt in measure(p) {
        t.push_row(vec![
            pt.k.to_string(),
            pt.n.to_string(),
            f2(pt.lattice_hops),
            f2(pt.mf_hops),
            f2(pt.lattice_hops / pt.mf_hops.max(1e-9)),
            f3(pt.forget_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_helps_in_every_dimension() {
        let pts = measure(&Params::quick());
        assert_eq!(pts.len(), 3);
        for pt in &pts {
            assert!(
                pt.mf_hops < pt.lattice_hops,
                "k={}: {} vs {}",
                pt.k,
                pt.mf_hops,
                pt.lattice_hops
            );
        }
    }

    #[test]
    fn forget_rate_is_dimension_independent() {
        let pts = measure(&Params::quick());
        let r1 = pts[0].forget_rate;
        for pt in &pts[1..] {
            assert!(
                (pt.forget_rate - r1).abs() / r1 < 0.15,
                "k={} forget rate {} deviates from k=1's {}",
                pt.k,
                pt.forget_rate,
                r1
            );
        }
    }

    #[test]
    fn table_renders() {
        let mut p = Params::quick();
        p.tori = vec![(64, 1), (8, 2)];
        p.warmup = 500;
        p.pairs = 40;
        let t = run(&p);
        assert_eq!(t.rows.len(), 2);
    }
}
