//! # self-stabilizing-smallworld
//!
//! A full reproduction of *"A Self-Stabilization Process for Small-World
//! Networks"* (Kniesburges, Koutsopoulos, Scheideler — IPPS 2012): a
//! distributed, asynchronous protocol that converges from **any weakly
//! connected initial topology** to a sorted ring with one harmonic
//! long-range link per node — a navigable 1-D small-world overlay with
//! polylogarithmic greedy routing, polylogarithmic join/leave recovery
//! and graceful failure degradation.
//!
//! This crate is the façade: it re-exports the workspace members so
//! applications can depend on a single crate.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `swn-core` | the protocol: ids, messages, node state machine (Algorithms 1–10), φ(α), connectivity views, phase invariants |
//! | [`sim`] | `swn-sim` | discrete-event simulator for the paper's asynchronous model: channels, adversarial initial states, convergence & churn measurement, parallel trials |
//! | [`topology`] | `swn-topology` | analysis: connectivity, paths, clustering, harmonic-law fits, greedy routing, robustness sweeps |
//! | [`baselines`] | `swn-baselines` | Kleinberg, Watts–Strogatz, Chord, Erdős–Rényi, ring lattices, and the pure move-and-forget process |
//! | [`runtime`] | `swn-runtime` | a genuinely concurrent threaded execution over crossbeam channels |
//!
//! ## Quickstart
//!
//! ```
//! use self_stabilizing_smallworld::prelude::*;
//!
//! // Sixteen nodes in an adversarial initial topology (a star).
//! let ids = evenly_spaced_ids(16);
//! let cfg = ProtocolConfig::default();
//! let init = generate(InitialTopology::Star, &ids, cfg, 7);
//! let mut net = init.into_network(7);
//!
//! // Run the protocol until RCP solves the sorted-ring problem.
//! let report = run_to_ring(&mut net, 100_000);
//! assert!(report.stabilized());
//!
//! // The stabilized overlay is a small world: greedy routing works.
//! let g = Graph::from_snapshot(&net.snapshot(), View::Cp);
//! let stats = evaluate_routing(&g, 100, 1_000, 1, None);
//! assert_eq!(stats.success_rate(), 1.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use swn_baselines as baselines;
pub use swn_core as core;
pub use swn_runtime as runtime;
pub use swn_sim as sim;
pub use swn_topology as topology;

/// Everything a typical application needs, in one import.
pub mod prelude {
    pub use swn_core::prelude::*;
    pub use swn_sim::churn::{join, leave, leave_random, RecoveryReport};
    pub use swn_sim::convergence::{run_to_ring, ConvergenceReport};
    pub use swn_sim::init::{generate, InitialState, InitialTopology};
    pub use swn_sim::{DeliveryPolicy, Network};
    pub use swn_topology::distribution::{ks_to_harmonic, log_log_slope, lrl_lengths};
    pub use swn_topology::routing::{evaluate_routing, greedy_route, RouteResult, RoutingStats};
    pub use swn_topology::Graph;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let ids = evenly_spaced_ids(3);
        assert_eq!(ids.len(), 3);
        let cfg = ProtocolConfig::default();
        assert!(cfg.validate().is_ok());
    }
}
