//! The connectivity-graph views of Definition 4.2.
//!
//! The convergence proof reasons about six graphs over the node set:
//!
//! * **CP** — node connectivity: all *stored* links (`l`, `r`, `lrl`,
//!   `ring`);
//! * **CC** — channel connectivity: CP plus the temporary links implied by
//!   every identifier sitting in a channel;
//! * **LCP / LCC** — the restriction to the linearization process:
//!   stored `l`/`r` links (LCP), plus `lin` messages (LCC);
//! * **RCP / RCC** — LCP/LCC plus the ring edges (stored, and for RCC the
//!   in-flight `ring` messages).
//!
//! A [`Snapshot`] is a frozen global state (taken by the simulator or the
//! threaded runtime); the view extractors return edge lists over node
//! *indices* in the snapshot, ready for the analysis crate.
//!
//! A [`NetView`] is the *borrowing* counterpart: references into a live
//! network's nodes and channels, ordered by ascending identifier. The
//! phase predicates evaluate against it without cloning a single node or
//! message, which turns the measurement loop's per-round cost from
//! O(state) copies into O(pointers). [`Snapshot::as_view`] bridges the
//! two worlds, so every predicate has exactly one implementation.

use crate::id::NodeId;
use crate::message::Message;
use crate::node::Node;
use std::collections::BTreeMap;

/// A frozen global state: every node's variables plus every channel's
/// contents. `channels[i]` holds the messages waiting in `nodes[i]`'s
/// channel.
#[derive(Clone, Debug)]
pub struct Snapshot {
    nodes: Vec<Node>,
    channels: Vec<Vec<Message>>,
    index: BTreeMap<NodeId, usize>,
}

/// Which connectivity view to extract from a snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum View {
    /// All stored links.
    Cp,
    /// Stored links + all channel-implied links.
    Cc,
    /// Stored `l`/`r` links only.
    Lcp,
    /// LCP + `lin` messages.
    Lcc,
    /// LCP + stored ring edges.
    Rcp,
    /// LCC + stored ring edges + `ring` messages.
    Rcc,
}

impl Snapshot {
    /// Builds a snapshot from node clones and their channel contents.
    ///
    /// # Panics
    /// Panics if `channels.len() != nodes.len()` or node ids collide.
    pub fn new(nodes: Vec<Node>, channels: Vec<Vec<Message>>) -> Self {
        assert_eq!(nodes.len(), channels.len(), "one channel per node required");
        let mut index = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = index.insert(n.id(), i);
            assert!(prev.is_none(), "duplicate node id {:?}", n.id());
        }
        Snapshot {
            nodes,
            channels,
            index,
        }
    }

    /// Snapshot with empty channels (pure node-state view).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let channels = vec![Vec::new(); nodes.len()];
        Snapshot::new(nodes, channels)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in snapshot order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The channels, parallel to [`nodes`](Self::nodes).
    pub fn channels(&self) -> &[Vec<Message>] {
        &self.channels
    }

    /// Index of the node with identifier `id`, if present.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Node indices in ascending id order.
    pub fn sorted_indices(&self) -> Vec<usize> {
        self.index.values().copied().collect()
    }

    /// Total number of messages in flight.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().map(Vec::len).sum()
    }

    /// A borrowing view of this snapshot (nodes in ascending id order).
    /// Predicates evaluated through the view agree with the snapshot
    /// implementations; only the node numbering differs (id rank instead
    /// of snapshot position).
    pub fn as_view(&self) -> NetView<'_> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut channels = Vec::with_capacity(self.nodes.len());
        for &i in self.index.values() {
            nodes.push(&self.nodes[i]);
            channels.push(self.channels[i].as_slice());
        }
        NetView { nodes, channels }
    }

    /// Extracts the directed edge list of a connectivity view. Edges point
    /// from the node *storing/receiving* an identifier to that identifier's
    /// node; identifiers of absent nodes (possible during churn) are
    /// skipped.
    pub fn edges(&self, view: View) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        let push = |edges: &mut Vec<(usize, usize)>, from: usize, to: NodeId| {
            if let Some(j) = self.index_of(to) {
                if j != from {
                    edges.push((from, j));
                }
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            // Stored l/r links: in every view.
            if let Some(l) = n.left().fin() {
                push(&mut edges, i, l);
            }
            if let Some(r) = n.right().fin() {
                push(&mut edges, i, r);
            }
            // Stored lrl: CP/CC only.
            if matches!(view, View::Cp | View::Cc) {
                push(&mut edges, i, n.lrl());
            }
            // Stored ring edge: CP/CC/RCP/RCC.
            if matches!(view, View::Cp | View::Cc | View::Rcp | View::Rcc) {
                if let Some(x) = n.ring() {
                    push(&mut edges, i, x);
                }
            }
        }
        // Channel-implied temporary links.
        if matches!(view, View::Cc | View::Lcc | View::Rcc) {
            for (i, ch) in self.channels.iter().enumerate() {
                for m in ch {
                    let include = match view {
                        View::Cc => true,
                        View::Lcc => m.in_lcc(),
                        View::Rcc => m.in_lcc() || matches!(m, Message::Ring(_)),
                        _ => unreachable!(),
                    };
                    if include {
                        for id in m.carried_ids() {
                            push(&mut edges, i, id);
                        }
                    }
                }
            }
        }
        edges
    }
}

/// A borrowing view of a global state: one `&Node` and one `&[Message]`
/// channel slice per live node, in **ascending identifier order** (so
/// index `i` is the node's ring rank). Built in O(n) pointer copies by
/// `Snapshot::as_view` or the simulator's `Network::view`; nothing is
/// cloned.
///
/// This is the state handed to the snapshot-free phase predicates
/// (`classify_view` and friends in `invariants`): the convergence loop
/// evaluates them every round, and cloning the whole network per round
/// was the measurement bottleneck the view removes.
#[derive(Debug)]
pub struct NetView<'a> {
    nodes: Vec<&'a Node>,
    channels: Vec<&'a [Message]>,
}

impl<'a> NetView<'a> {
    /// Builds a view from parallel node/channel references.
    ///
    /// # Panics
    /// Panics if the lists differ in length or the nodes are not in
    /// strictly ascending id order (which also rules out duplicates).
    pub fn new(nodes: Vec<&'a Node>, channels: Vec<&'a [Message]>) -> Self {
        assert_eq!(nodes.len(), channels.len(), "one channel per node required");
        assert!(
            nodes.windows(2).all(|w| w[0].id() < w[1].id()),
            "view nodes must be in strictly ascending id order"
        );
        NetView { nodes, channels }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the view holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, ascending by id (index = ring rank).
    pub fn nodes(&self) -> &[&'a Node] {
        &self.nodes
    }

    /// The node at rank `i`.
    pub fn node(&self, i: usize) -> &'a Node {
        self.nodes[i]
    }

    /// The channel contents of the node at rank `i`.
    pub fn channel(&self, i: usize) -> &'a [Message] {
        self.channels[i]
    }

    /// Rank of the node with identifier `id`, if present (binary search —
    /// the view carries no index map).
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.nodes.binary_search_by_key(&id, |n| n.id()).ok()
    }

    /// Total number of messages in flight.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().map(|c| c.len()).sum()
    }

    /// Streams the directed edges of a connectivity view into `f` without
    /// materializing an edge list. Same edge semantics as
    /// [`Snapshot::edges`]: edges point from the node storing/receiving an
    /// identifier to that identifier's node, absent identifiers and
    /// self-loops are skipped; indices are id ranks.
    pub fn for_each_edge<F: FnMut(usize, usize)>(&self, view: View, mut f: F) {
        let mut push = |from: usize, to: NodeId| {
            if let Some(j) = self.index_of(to) {
                if j != from {
                    f(from, j);
                }
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(l) = n.left().fin() {
                push(i, l);
            }
            if let Some(r) = n.right().fin() {
                push(i, r);
            }
            if matches!(view, View::Cp | View::Cc) {
                push(i, n.lrl());
            }
            if matches!(view, View::Cp | View::Cc | View::Rcp | View::Rcc) {
                if let Some(x) = n.ring() {
                    push(i, x);
                }
            }
        }
        if matches!(view, View::Cc | View::Lcc | View::Rcc) {
            for (i, ch) in self.channels.iter().enumerate() {
                for m in *ch {
                    let include = match view {
                        View::Cc => true,
                        View::Lcc => m.in_lcc(),
                        View::Rcc => m.in_lcc() || matches!(m, Message::Ring(_)),
                        _ => unreachable!(),
                    };
                    if include {
                        for id in m.carried_ids() {
                            push(i, id);
                        }
                    }
                }
            }
        }
    }

    /// The directed edge list of a connectivity view, over id ranks.
    pub fn edges(&self, view: View) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        self.for_each_edge(view, |a, b| edges.push((a, b)));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::id::Extended;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    /// Three-node sorted list 0.2 – 0.5 – 0.8 with assorted extras.
    fn sample() -> Snapshot {
        let cfg = ProtocolConfig::default();
        let a = Node::with_state(
            id(0.2),
            Extended::NegInf,
            Extended::Fin(id(0.5)),
            id(0.8), // lrl
            Some(id(0.8)),
            cfg,
        );
        let b = Node::with_state(
            id(0.5),
            Extended::Fin(id(0.2)),
            Extended::Fin(id(0.8)),
            id(0.5),
            None,
            cfg,
        );
        let c = Node::with_state(
            id(0.8),
            Extended::Fin(id(0.5)),
            Extended::PosInf,
            id(0.2),
            Some(id(0.2)),
            cfg,
        );
        let channels = vec![
            vec![Message::Lin(id(0.8))],
            vec![Message::Ring(id(0.2))],
            vec![Message::ProbR(id(0.8))],
        ];
        Snapshot::new(vec![a, b, c], channels)
    }

    #[test]
    fn lcp_contains_only_list_links() {
        let s = sample();
        let mut e = s.edges(View::Lcp);
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn rcp_adds_ring_edges() {
        let s = sample();
        let e = s.edges(View::Rcp);
        assert!(e.contains(&(0, 2)), "min.ring = max");
        assert!(e.contains(&(2, 0)), "max.ring = min");
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn cp_adds_lrl_edges() {
        let s = sample();
        let e = s.edges(View::Cp);
        assert!(e.contains(&(0, 2)), "a.lrl = c");
        assert!(e.contains(&(2, 0)), "c.lrl = a");
        // b.lrl = self: skipped.
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn lcc_includes_lin_but_not_other_messages() {
        let s = sample();
        let e = s.edges(View::Lcc);
        // Channel of node 0 has Lin(0.8): edge (0, 2).
        assert!(e.contains(&(0, 2)));
        // Ring / ProbR messages must not contribute to LCC.
        assert_eq!(e.len(), s.edges(View::Lcp).len() + 1);
    }

    #[test]
    fn rcc_includes_ring_messages() {
        let s = sample();
        let e = s.edges(View::Rcc);
        // node 1's channel has Ring(0.2): edge (1, 0) — already in LCP,
        // plus node 0's Lin(0.8) and both stored ring edges.
        assert!(e.contains(&(1, 0)));
        assert_eq!(e.len(), s.edges(View::Lcc).len() + 2 + 1);
    }

    #[test]
    fn cc_is_a_superset_of_every_other_view() {
        let s = sample();
        let cc: std::collections::HashSet<_> = s.edges(View::Cc).into_iter().collect();
        for v in [View::Cp, View::Lcp, View::Lcc, View::Rcp, View::Rcc] {
            for e in s.edges(v) {
                assert!(cc.contains(&e), "{v:?} edge {e:?} missing from CC");
            }
        }
    }

    #[test]
    fn absent_ids_are_skipped() {
        let cfg = ProtocolConfig::default();
        // Node pointing at a departed node 0.9.
        let a = Node::with_state(
            id(0.2),
            Extended::NegInf,
            Extended::Fin(id(0.9)),
            id(0.2),
            None,
            cfg,
        );
        let s = Snapshot::from_nodes(vec![a]);
        assert!(s.edges(View::Cc).is_empty());
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of(id(0.5)), Some(1));
        assert_eq!(s.index_of(id(0.9)), None);
        assert_eq!(s.sorted_indices(), vec![0, 1, 2]);
        assert_eq!(s.messages_in_flight(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn rejects_duplicate_ids() {
        let cfg = ProtocolConfig::default();
        let a = Node::new(id(0.5), cfg);
        let b = Node::new(id(0.5), cfg);
        let _ = Snapshot::from_nodes(vec![a, b]);
    }

    #[test]
    fn as_view_edges_match_snapshot_edges_for_every_view() {
        // The sample snapshot is already in ascending id order, so ranks
        // and snapshot indices coincide and edge lists must be equal as
        // sets.
        let s = sample();
        let v = s.as_view();
        assert_eq!(v.len(), s.len());
        assert_eq!(v.messages_in_flight(), s.messages_in_flight());
        for view in [
            View::Cp,
            View::Cc,
            View::Lcp,
            View::Lcc,
            View::Rcp,
            View::Rcc,
        ] {
            let mut a = s.edges(view);
            let mut b = v.edges(view);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{view:?} edges diverge between view and snapshot");
        }
    }

    #[test]
    fn view_index_of_uses_rank_order() {
        let s = sample();
        let v = s.as_view();
        assert_eq!(v.index_of(id(0.2)), Some(0));
        assert_eq!(v.index_of(id(0.5)), Some(1));
        assert_eq!(v.index_of(id(0.8)), Some(2));
        assert_eq!(v.index_of(id(0.9)), None);
        assert_eq!(v.node(1).id(), id(0.5));
        assert_eq!(v.channel(1), &[Message::Ring(id(0.2))][..]);
    }

    #[test]
    #[should_panic(expected = "ascending id order")]
    fn view_rejects_unsorted_nodes() {
        let cfg = ProtocolConfig::default();
        let a = Node::new(id(0.8), cfg);
        let b = Node::new(id(0.2), cfg);
        let _ = NetView::new(vec![&a, &b], vec![&[], &[]]);
    }
}
