//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the runtime relies on: senders are `Clone + Send + Sync`
//! (std's `mpsc::Sender` is not `Sync`, which is exactly why the real
//! crossbeam is the conventional choice here), sends never block, and
//! receivers observe disconnection once every sender is gone. Built on a
//! `Mutex<VecDeque>` + `Condvar` — adequate for the per-node channels of
//! a few dozen threads this workspace spawns, with none of the real
//! crate's lock-free machinery.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel. Cloning produces another handle to
    /// the same queue.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender has been dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; never blocks. Fails only when every receiver
        /// has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.chan.lock().push_back(msg);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection instead of sleeping forever.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.lock();
            match q.pop_front() {
                Some(m) => Ok(m),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues a message, blocking while the channel is empty and
        /// senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.lock();
            loop {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.chan.lock().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_preserved() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnection_observed_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(1).expect("still connected");
            drop(tx2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_once_receiver_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn senders_are_shareable_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let tx = std::sync::Arc::new(tx);
            let mut handles = Vec::new();
            for t in 0..4 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).expect("receiver alive");
                    }
                }));
            }
            for h in handles {
                h.join().expect("sender thread");
            }
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, (0..400).collect::<Vec<_>>());
        }
    }
}
