//! Round-loop benchmark: snapshot-free measurement vs. the old
//! clone-per-round baseline, plus criterion timings for `Network::step`
//! and `run_to_ring`.
//!
//! Besides the criterion groups, this bench emits `BENCH_roundloop.json`
//! (at the workspace root, or wherever `SWN_BENCH_OUT` points) recording
//! the measured speedup of the borrowing-view convergence loop over a
//! faithful reimplementation of the snapshot-per-round loop it replaced.
//! Both loops are driven on identically seeded networks and must produce
//! identical reports — the speedup is pure observation cost.
//!
//! `SWN_BENCH_QUICK=1` shrinks the network so CI can smoke-run the bench
//! in seconds (the vendored criterion stand-in has no CLI quick mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::invariants::{classify, Phase};
use swn_sim::convergence::{run_to_ring, ConvergenceReport};
use swn_sim::init::{generate, InitialTopology};
use swn_sim::Network;

fn quick_mode() -> bool {
    std::env::var_os("SWN_BENCH_QUICK").is_some()
}

fn fresh_net(n: usize, seed: u64) -> Network {
    let ids = evenly_spaced_ids(n);
    generate(
        InitialTopology::RandomSparse { extra: 3 },
        &ids,
        ProtocolConfig::default(),
        seed,
    )
    .into_network(seed)
}

/// The measurement loop exactly as it was before the borrowing view:
/// clone the entire state and classify it from scratch after every
/// round. Kept here as the baseline the tentpole is measured against.
fn run_to_ring_snapshot_baseline(net: &mut Network, max_rounds: u64) -> ConvergenceReport {
    let mut report = ConvergenceReport {
        monotone: true,
        ..Default::default()
    };
    let mut best = Phase::Disconnected;
    let note = |phase: Phase, round: u64, report: &mut ConvergenceReport| {
        if phase >= Phase::LccConnected && report.rounds_to_lcc.is_none() {
            report.rounds_to_lcc = Some(round);
        }
        if phase >= Phase::SortedList && report.rounds_to_list.is_none() {
            report.rounds_to_list = Some(round);
        }
        if phase >= Phase::SortedRing && report.rounds_to_ring.is_none() {
            report.rounds_to_ring = Some(round);
        }
    };
    let initial = classify(&net.snapshot());
    best = best.max(initial);
    note(initial, 0, &mut report);
    let mut round = 0;
    while report.rounds_to_ring.is_none() && round < max_rounds {
        let stats = net.step();
        round += 1;
        report.messages_to_ring += stats.total_sent();
        if stats.probe_repairs > 0 {
            report.last_probe_repair = Some(round);
        }
        let phase = classify(&net.snapshot());
        if best >= Phase::SortedList && phase < best {
            report.monotone = false;
        }
        best = best.max(phase);
        note(phase, round, &mut report);
    }
    report.rounds_run = round;
    report
}

#[derive(Serialize)]
struct RoundloopRecord {
    n: usize,
    seeds: u64,
    quick: bool,
    /// Old loop: snapshot clone + from-scratch classify every round.
    baseline_ms: f64,
    /// New loop: borrowing view + dirty-skip + leveled classification.
    view_ms: f64,
    /// The bare protocol simulation on the same seeds, no observation —
    /// the floor both loops share.
    step_only_ms: f64,
    /// What the old observation path cost on top of the simulation.
    baseline_overhead_ms: f64,
    /// What the new observation path costs on top of the simulation.
    view_overhead_ms: f64,
    /// Whole-loop speedup (bounded by the shared simulation cost).
    loop_speedup: f64,
    /// Measurement-overhead speedup — the tentpole's ≥5× target: how
    /// much cheaper observing convergence became per run.
    overhead_speedup: f64,
    rounds_run: u64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn out_path() -> std::path::PathBuf {
    match std::env::var_os("SWN_BENCH_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_roundloop.json"),
    }
}

/// Head-to-head comparison on identical seeds; asserts the two loops
/// agree on every milestone, then records the speedup.
fn emit_roundloop_record(c: &mut Criterion) {
    let quick = quick_mode();
    let n = if quick { 256 } else { 2048 };
    let seeds = if quick { 2 } else { 3 };
    let max_rounds = 200_000;

    let mut baseline = Duration::ZERO;
    let mut view = Duration::ZERO;
    let mut step_only = Duration::ZERO;
    let mut rounds_run = 0;
    for seed in 1..=seeds {
        let mut net_a = fresh_net(n, seed);
        let start = Instant::now();
        let rep_a = run_to_ring_snapshot_baseline(&mut net_a, max_rounds);
        baseline += start.elapsed();

        let mut net_b = fresh_net(n, seed);
        let start = Instant::now();
        let rep_b = run_to_ring(&mut net_b, max_rounds);
        view += start.elapsed();

        // The floor: the identical simulation with no observation at all
        // (same seed → same computation, so the same rounds).
        let mut net_c = fresh_net(n, seed);
        let start = Instant::now();
        net_c.run(rep_b.rounds_run);
        step_only += start.elapsed();

        assert!(rep_a.stabilized() && rep_b.stabilized(), "seed {seed}");
        assert_eq!(rep_a.rounds_to_lcc, rep_b.rounds_to_lcc, "seed {seed}");
        assert_eq!(rep_a.rounds_to_list, rep_b.rounds_to_list, "seed {seed}");
        assert_eq!(rep_a.rounds_to_ring, rep_b.rounds_to_ring, "seed {seed}");
        assert_eq!(
            rep_a.messages_to_ring, rep_b.messages_to_ring,
            "seed {seed}"
        );
        assert_eq!(rep_a.rounds_run, rep_b.rounds_run, "seed {seed}");
        rounds_run += rep_b.rounds_run;
    }

    let baseline_overhead = baseline.saturating_sub(step_only);
    let view_overhead = view.saturating_sub(step_only);
    let record = RoundloopRecord {
        n,
        seeds,
        quick,
        baseline_ms: ms(baseline),
        view_ms: ms(view),
        step_only_ms: ms(step_only),
        baseline_overhead_ms: ms(baseline_overhead),
        view_overhead_ms: ms(view_overhead),
        loop_speedup: baseline.as_secs_f64() / view.as_secs_f64().max(1e-12),
        overhead_speedup: baseline_overhead.as_secs_f64() / view_overhead.as_secs_f64().max(1e-12),
        rounds_run,
    };
    let path = out_path();
    let json = serde_json::to_string(&record).expect("serialize bench record");
    std::fs::write(&path, json).expect("write BENCH_roundloop.json");
    println!(
        "roundloop n={n}: loop {:.1} -> {:.1} ms ({:.2}x), observation overhead \
         {:.1} -> {:.1} ms ({:.1}x) over a {:.1} ms simulation floor -> {}",
        record.baseline_ms,
        record.view_ms,
        record.loop_speedup,
        record.baseline_overhead_ms,
        record.view_overhead_ms,
        record.overhead_speedup,
        record.step_only_ms,
        path.display()
    );

    // Also register the two loops as criterion benchmarks at a small n so
    // the numbers land in the regular bench report.
    let bench_n = if quick { 128 } else { 512 };
    let mut group = c.benchmark_group("roundloop_run_to_ring");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_with_input(
        BenchmarkId::new("snapshot_baseline", bench_n),
        &bench_n,
        |b, &n| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let mut net = fresh_net(n, seed);
                black_box(run_to_ring_snapshot_baseline(&mut net, max_rounds).rounds_to_ring)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("borrowing_view", bench_n),
        &bench_n,
        |b, &n| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let mut net = fresh_net(n, seed);
                black_box(run_to_ring(&mut net, max_rounds).rounds_to_ring)
            });
        },
    );
    group.finish();
}

/// Per-round cost of the reusable-buffer `step` on a stable network.
fn bench_step(c: &mut Criterion) {
    let quick = quick_mode();
    let mut group = c.benchmark_group("roundloop_step");
    group.sample_size(if quick { 5 } else { 20 });
    let sizes: &[usize] = if quick { &[256] } else { &[256, 2048] };
    for &n in sizes {
        group.bench_with_input(BenchmarkId::new("stable_step", n), &n, |b, &n| {
            let ids = evenly_spaced_ids(n);
            let mut net = Network::new(
                swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default()),
                7,
            );
            net.run(20);
            b.iter(|| black_box(net.step().total_sent()));
        });
    }
    group.finish();
}

criterion_group!(benches, emit_roundloop_record, bench_step);
criterion_main!(benches);
