//! Chaos campaign engine: randomized fault-plan composition, outcome
//! classification, and scenario shrinking.
//!
//! PR 5's fault engine and the adversarial behaviors execute *scripted*
//! scenarios — compositions someone thought to write down. This module
//! samples hundreds of random **valid** [`FaultPlan`] compositions
//! (benign loss/duplication/partition/crash/perturbation plus
//! adversarial selective-forward/lying/sybil behaviors, all over
//! bounded windows), runs each one to a verdict, and — when a run
//! *fails* (panics, exhausts its budget, or disconnects without an
//! attributable culprit) — shrinks the scenario to a minimal
//! reproducer:
//!
//! 1. **delta debugging** ([`shrink`]) over the flattened plan entry
//!    list (chunked complement removal down to single entries), then
//! 2. **parameter shrinking** — halving windows, downtimes, victim
//!    counts, refusal kind sets and sybil sizes — to a fixpoint.
//!
//! Every [`Scenario`] is self-contained and serde-serializable: the
//! JSON form replays the exact run (network build, fault schedule and
//! all RNG streams are derived from its seeds), so a shrunk reproducer
//! checked into a bug report is a deterministic regression test.

use crate::faults::{
    find_culprit, watch_recovery, Behavior, Crash, FaultPlan, LieMode, Misbehavior, Partition,
    Perturbation, RateWindow, Restart, Verdict,
};
use crate::init::{generate, InitialTopology};
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{Rng as _, RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::invariants::{make_sorted_ring, weakly_connected_view};
use swn_core::message::MessageKind;
use swn_core::views::View;

/// The start topology a scenario runs from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Start {
    /// The converged sorted ring — faults strike a stable network.
    Ring,
    /// A random weakly connected digraph — faults strike mid-
    /// linearization, where forward-without-store sole carriers are
    /// live and loss is most dangerous.
    Sparse {
        /// Random links added on top of the spanning tree.
        extra: usize,
    },
}

/// A self-contained, replayable chaos scenario: network size, seeds,
/// start topology, recovery budget and the fault plan. Serialized
/// scenarios replay deterministically — every random stream in the run
/// is derived from the seeds stored here.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of nodes at the start.
    pub n: usize,
    /// Seed for the network's scheduler/protocol RNG (and the sparse
    /// topology generator, when applicable).
    pub net_seed: u64,
    /// The start topology.
    pub start: Start,
    /// Round budget for the post-horizon recovery watch.
    pub budget: u64,
    /// The fault schedule (carries its own injector seed).
    pub plan: FaultPlan,
}

impl Scenario {
    /// Serializes the scenario to its replayable JSON form.
    pub fn to_json(&self) -> String {
        // Rendering an in-memory Value tree to text cannot fail.
        // lint: allow(unwrap-in-lib)
        serde_json::to_string(self).expect("scenario serialization cannot fail")
    }

    /// Parses a scenario back from JSON, rejecting garbage and invalid
    /// plans as an error.
    pub fn from_json(json: &str) -> Result<Scenario, String> {
        let s: Scenario = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if s.n == 0 {
            return Err("scenario with zero nodes".to_string());
        }
        s.plan.validate()?;
        Ok(s)
    }

    /// Builds the start network (without the fault plan attached).
    pub fn build(&self) -> Network {
        let ids = evenly_spaced_ids(self.n);
        let cfg = ProtocolConfig::default();
        match self.start {
            Start::Ring => Network::new(make_sorted_ring(&ids, cfg), self.net_seed),
            Start::Sparse { extra } => generate(
                InitialTopology::RandomSparse { extra },
                &ids,
                cfg,
                self.net_seed,
            )
            .into_network(self.net_seed),
        }
    }

    /// The first round at which every scheduled fault (including crash
    /// restarts) has landed — the boundary between the injection drive
    /// and the recovery watch.
    pub fn horizon(&self) -> u64 {
        let p = &self.plan;
        let mut h = 1;
        for w in p.drop.iter().chain(&p.duplicate) {
            h = h.max(w.end);
        }
        for pa in &p.partitions {
            h = h.max(pa.end);
        }
        for c in &p.crashes {
            h = h.max(c.round.saturating_add(c.down_for));
        }
        for pe in &p.perturbations {
            h = h.max(pe.round.saturating_add(1));
        }
        for b in &p.behaviors {
            h = h.max(b.end);
        }
        h
    }
}

/// The classified outcome of one scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The sorted ring held again `mttr` rounds after the fault horizon
    /// (0 when the plan never broke it).
    Recovered {
        /// Rounds from the fault horizon to re-stabilization.
        mttr: u64,
    },
    /// The knowledge graph disconnected — permanent by the closure
    /// argument. `attributed` is true when the culprit sole-carrier
    /// drop was identified in the drop log.
    Disconnected {
        /// The absolute round disconnection was detected at.
        round: u64,
        /// Whether a culprit drop record was identified.
        attributed: bool,
    },
    /// The recovery watch ran out of rounds with the graph still
    /// connected.
    BudgetExhausted {
        /// The exhausted watch budget.
        budget: u64,
    },
    /// The run panicked — always a bug, never a valid classification.
    Panicked {
        /// The panic payload, when printable.
        message: String,
    },
}

impl Outcome {
    /// Stable label for per-class tallies.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Recovered { .. } => "recovered",
            Outcome::Disconnected { .. } => "disconnected",
            Outcome::BudgetExhausted { .. } => "budget_exhausted",
            Outcome::Panicked { .. } => "panicked",
        }
    }

    /// True when the watchdog *explained* the run: it recovered, or it
    /// disconnected with an attributable culprit. Budget exhaustion,
    /// panics and unattributed disconnections are unclassified.
    pub fn classified(&self) -> bool {
        matches!(
            self,
            Outcome::Recovered { .. }
                | Outcome::Disconnected {
                    attributed: true,
                    ..
                }
        )
    }
}

/// Everything one scenario run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The classification.
    pub outcome: Outcome,
    /// The fault horizon the run drove to.
    pub horizon: u64,
    /// Messages sent across drive + watch.
    pub messages: u64,
    /// Messages the injector destroyed.
    pub dropped_fault: u64,
    /// Messages a lying-state behavior forged.
    pub forged_fault: u64,
}

/// Runs a scenario to a classified [`RunResult`]. Panics anywhere in
/// the drive or watch are caught and classified as
/// [`Outcome::Panicked`] — a campaign never aborts on one bad scenario.
pub fn run_scenario(s: &Scenario) -> RunResult {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_scenario_inner(s)));
    match caught {
        Ok(result) => result,
        Err(payload) => RunResult {
            outcome: Outcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
            horizon: s.horizon(),
            messages: 0,
            dropped_fault: 0,
            forged_fault: 0,
        },
    }
}

fn run_scenario_inner(s: &Scenario) -> RunResult {
    let mut net = s.build();
    net.attach_faults(s.plan.clone());
    let horizon = s.horizon();
    let mut result = RunResult {
        outcome: Outcome::BudgetExhausted { budget: s.budget },
        horizon,
        messages: 0,
        dropped_fault: 0,
        forged_fault: 0,
    };
    // Drive through the fault horizon, watching for disconnection the
    // same way `watch_recovery` does: a drop, forgery or perturbation
    // erasure can sever a sole carrier, and once the CC view
    // disconnects no later round can reconnect it — so detection inside
    // the injection window is final.
    while net.round() < horizon {
        let stats = net.step();
        result.messages += stats.total_sent();
        result.dropped_fault += stats.dropped_fault;
        result.forged_fault += stats.forged_fault;
        if (stats.dropped_fault > 0 || stats.forged_fault > 0 || stats.erased_fault > 0)
            && !weakly_connected_view(&net.view(), View::Cc)
        {
            result.outcome = Outcome::Disconnected {
                round: net.round(),
                attributed: find_culprit(&net).is_some(),
            };
            return result;
        }
    }
    // Past the horizon every window is closed and every crash has
    // restarted: what remains is pure recovery, so the watch measures
    // MTTR directly.
    let report = watch_recovery(&mut net, s.budget);
    result.messages += report.messages;
    result.dropped_fault += report.dropped_fault;
    result.forged_fault += report.forged_fault;
    result.outcome = match report.verdict {
        Verdict::Recovered { rounds } => Outcome::Recovered { mttr: rounds },
        Verdict::PermanentlyDisconnected { round, culprit } => Outcome::Disconnected {
            round,
            attributed: culprit.is_some(),
        },
        Verdict::BudgetExhausted { budget } => Outcome::BudgetExhausted { budget },
    };
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Campaign shape: how many scenarios to sample and from what space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed — generation and every scenario derive from it.
    pub seed: u64,
    /// Number of scenarios to sample and run.
    pub scenarios: usize,
    /// Smallest network sampled.
    pub min_n: usize,
    /// Largest network sampled.
    pub max_n: usize,
    /// Per-scenario recovery watch budget.
    pub budget: u64,
}

impl CampaignConfig {
    /// A campaign of `scenarios` runs under `seed` with default bounds.
    pub fn new(seed: u64, scenarios: usize) -> Self {
        CampaignConfig {
            seed,
            scenarios,
            min_n: 8,
            max_n: 40,
            budget: 5_000,
        }
    }
}

/// Samples one random **valid** scenario: 1–5 fault entries across all
/// categories, windows bounded to the first ~30 rounds, and per-node
/// crash windows kept disjoint by construction.
pub fn sample_scenario(rng: &mut StdRng, cfg: &CampaignConfig) -> Scenario {
    let n = rng.random_range(cfg.min_n..=cfg.max_n.max(cfg.min_n));
    let ids = evenly_spaced_ids(n);
    let start = if rng.random_bool(0.5) {
        Start::Ring
    } else {
        Start::Sparse {
            extra: rng.random_range(1usize..4),
        }
    };
    let mut plan = FaultPlan::new(rng.next_u64());
    let entries = rng.random_range(1usize..=5);
    for _ in 0..entries {
        match rng.random_range(0u32..6) {
            0 => plan.drop.push(sample_window(rng)),
            1 => plan.duplicate.push(sample_window(rng)),
            2 => {
                let (start, end) = sample_span(rng);
                plan.partitions.push(Partition {
                    start,
                    end,
                    cut: ids[rng.random_range(0..n)],
                });
            }
            3 => {
                let node = ids[rng.random_range(0..n)];
                let round = rng.random_range(1u64..=16);
                let down_for = rng.random_range(1u64..=6);
                // Keep per-node crash windows disjoint — rejected by
                // `validate` otherwise. Skipping (instead of resampling)
                // keeps generation total and deterministic.
                let end = round + down_for;
                let overlaps = plan
                    .crashes
                    .iter()
                    .any(|c| c.node == node && round < c.round + c.down_for && c.round < end);
                if !overlaps {
                    let restart = if rng.random_bool(0.5) {
                        Restart::Durable {
                            snapshot_round: rng.random_range(0..=round),
                        }
                    } else {
                        Restart::Amnesia
                    };
                    plan.crashes.push(Crash {
                        round,
                        node,
                        down_for,
                        restart,
                    });
                }
            }
            4 => plan.perturbations.push(Perturbation {
                round: rng.random_range(1u64..=16),
                k: rng.random_range(1usize..=(n / 6).max(1)),
            }),
            _ => {
                let (start, end) = sample_span(rng);
                let node = ids[rng.random_range(0..n)];
                let kind = match rng.random_range(0u32..3) {
                    0 => Misbehavior::SelectiveForward {
                        kinds: sample_kinds(rng),
                        p: 0.3 + 0.7 * rng.random::<f64>(),
                    },
                    1 => Misbehavior::LyingState {
                        mode: if rng.random_bool(0.5) {
                            LieMode::SelfPromote
                        } else {
                            LieMode::Scramble
                        },
                    },
                    _ => Misbehavior::SybilCluster {
                        k: rng.random_range(1usize..=5),
                        center: ids[rng.random_range(0..n)],
                    },
                };
                plan.behaviors.push(Behavior {
                    start,
                    end,
                    node,
                    kind,
                });
            }
        }
    }
    debug_assert!(plan.validate().is_ok(), "sampler produced invalid plan");
    Scenario {
        n,
        net_seed: rng.next_u64(),
        start,
        budget: cfg.budget,
        plan,
    }
}

fn sample_span(rng: &mut StdRng) -> (u64, u64) {
    let start = rng.random_range(1u64..=16);
    let len = rng.random_range(1u64..=12);
    (start, start + len)
}

fn sample_window(rng: &mut StdRng) -> RateWindow {
    let (start, end) = sample_span(rng);
    RateWindow {
        start,
        end,
        p: 0.05 + 0.85 * rng.random::<f64>(),
    }
}

fn sample_kinds(rng: &mut StdRng) -> Vec<MessageKind> {
    let count = rng.random_range(1usize..=3);
    let mut kinds: Vec<MessageKind> = Vec::with_capacity(count);
    for _ in 0..count {
        let k = MessageKind::ALL[rng.random_range(0..MessageKind::ALL.len())];
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    }
    kinds
}

/// A failed scenario with its shrunk minimal reproducer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureCase {
    /// Position of the scenario in the campaign (for re-derivation).
    pub index: usize,
    /// The original failing scenario.
    pub scenario: Scenario,
    /// The original failure.
    pub result: RunResult,
    /// The shrunk reproducer (still failing, minimal entry list).
    pub shrunk: Scenario,
    /// The failure the shrunk reproducer exhibits.
    pub shrunk_result: RunResult,
}

/// Aggregate campaign tallies plus every shrunk failure.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Scenarios run.
    pub total: usize,
    /// Runs that re-stabilized.
    pub recovered: usize,
    /// Runs that disconnected with an attributed culprit.
    pub disconnected: usize,
    /// Runs that disconnected without attribution (failures).
    pub unattributed: usize,
    /// Runs that exhausted their watch budget (failures).
    pub budget_exhausted: usize,
    /// Runs that panicked (failures).
    pub panicked: usize,
    /// Every failing scenario, shrunk.
    pub failures: Vec<FailureCase>,
}

impl CampaignReport {
    /// True when every run was classified and nothing failed the
    /// campaign predicate.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The default failure predicate: panics, budget exhaustion and
/// unattributed disconnections fail; recovery and attributed
/// disconnections are valid classifications.
pub fn default_failure(r: &RunResult) -> bool {
    !r.outcome.classified()
}

/// Runs a seeded campaign: samples `cfg.scenarios` scenarios, runs
/// each, tallies outcomes, and shrinks every run `is_failure` flags
/// into a minimal reproducer.
pub fn run_campaign(
    cfg: &CampaignConfig,
    is_failure: &dyn Fn(&RunResult) -> bool,
) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = CampaignReport::default();
    for index in 0..cfg.scenarios {
        let scenario = sample_scenario(&mut rng, cfg);
        let result = run_scenario(&scenario);
        report.total += 1;
        match &result.outcome {
            Outcome::Recovered { .. } => report.recovered += 1,
            Outcome::Disconnected {
                attributed: true, ..
            } => report.disconnected += 1,
            Outcome::Disconnected {
                attributed: false, ..
            } => report.unattributed += 1,
            Outcome::BudgetExhausted { .. } => report.budget_exhausted += 1,
            Outcome::Panicked { .. } => report.panicked += 1,
        }
        if is_failure(&result) {
            let shrunk = shrink(&scenario, &|cand| is_failure(&run_scenario(cand)));
            let shrunk_result = run_scenario(&shrunk);
            report.failures.push(FailureCase {
                index,
                scenario,
                result,
                shrunk,
                shrunk_result,
            });
        }
    }
    report
}

/// One plan entry, the unit of delta debugging.
#[derive(Clone, Debug, PartialEq)]
enum Entry {
    Drop(RateWindow),
    Duplicate(RateWindow),
    Partition(Partition),
    Crash(Crash),
    Perturbation(Perturbation),
    Behavior(Behavior),
}

fn to_entries(plan: &FaultPlan) -> Vec<Entry> {
    let mut out = Vec::with_capacity(plan.entry_count());
    out.extend(plan.drop.iter().copied().map(Entry::Drop));
    out.extend(plan.duplicate.iter().copied().map(Entry::Duplicate));
    out.extend(plan.partitions.iter().copied().map(Entry::Partition));
    out.extend(plan.crashes.iter().copied().map(Entry::Crash));
    out.extend(plan.perturbations.iter().copied().map(Entry::Perturbation));
    out.extend(plan.behaviors.iter().cloned().map(Entry::Behavior));
    out
}

fn from_entries(seed: u64, entries: &[Entry]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for e in entries {
        match e.clone() {
            Entry::Drop(w) => plan.drop.push(w),
            Entry::Duplicate(w) => plan.duplicate.push(w),
            Entry::Partition(p) => plan.partitions.push(p),
            Entry::Crash(c) => plan.crashes.push(c),
            Entry::Perturbation(p) => plan.perturbations.push(p),
            Entry::Behavior(b) => plan.behaviors.push(b),
        }
    }
    plan
}

fn with_plan(s: &Scenario, plan: FaultPlan) -> Scenario {
    Scenario { plan, ..s.clone() }
}

/// Shrinks a failing scenario to a minimal reproducer. `fails` is the
/// oracle ("does this candidate still fail?"); the input scenario must
/// fail it. Two phases:
///
/// 1. **Delta debugging** over the flattened entry list: chunks of
///    decreasing size are removed while the failure persists, ending
///    with a single-entry sweep, so the result is 1-minimal — no single
///    entry can be removed without losing the failure.
/// 2. **Parameter shrinking** to a fixpoint: each surviving entry's
///    windows, downtimes, probabilities-adjacent sizes (victim count,
///    kind set, sybil size) are halved while the failure persists.
///
/// Invalid intermediate candidates (impossible here by construction,
/// since removal and halving preserve validity) are skipped by
/// re-validation, defensively.
pub fn shrink(s: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut best = s.clone();
    let seed = s.plan.seed;
    let mut entries = to_entries(&best.plan);

    // Phase 1: ddmin. Try removing complements at increasing
    // granularity; a successful removal restarts at coarse granularity.
    let mut chunk = entries.len().div_ceil(2).max(1);
    while !entries.is_empty() {
        let mut removed_any = false;
        let mut i = 0;
        while i < entries.len() {
            let hi = (i + chunk).min(entries.len());
            let mut candidate: Vec<Entry> = entries.clone();
            candidate.drain(i..hi);
            let cand = with_plan(&best, from_entries(seed, &candidate));
            if cand.plan.validate().is_ok() && fails(&cand) {
                entries = candidate;
                best = cand;
                removed_any = true;
                // Same index now holds the next chunk.
            } else {
                i = hi;
            }
        }
        if removed_any {
            chunk = entries.len().div_ceil(2).max(1);
        } else if chunk > 1 {
            chunk = chunk.div_ceil(2).max(1).min(chunk - 1);
        } else {
            break;
        }
    }

    // Phase 2: per-entry parameter shrinking to a fixpoint.
    loop {
        let entries = to_entries(&best.plan);
        let mut improved = false;
        'outer: for (i, e) in entries.iter().enumerate() {
            for smaller in shrink_entry(e) {
                let mut candidate = entries.clone();
                candidate[i] = smaller;
                let cand = with_plan(&best, from_entries(seed, &candidate));
                if cand.plan.validate().is_ok() && fails(&cand) {
                    best = cand;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Candidate strictly-smaller versions of one entry, most aggressive
/// first. Repeated application (the phase-2 fixpoint loop) walks each
/// parameter down by halving.
fn shrink_entry(e: &Entry) -> Vec<Entry> {
    let mut out = Vec::new();
    let halve_span = |start: u64, end: u64| -> Option<u64> {
        let len = end.saturating_sub(start);
        (len >= 2).then(|| start + len / 2)
    };
    match e {
        Entry::Drop(w) => {
            if let Some(end) = halve_span(w.start, w.end) {
                out.push(Entry::Drop(RateWindow { end, ..*w }));
            }
        }
        Entry::Duplicate(w) => {
            if let Some(end) = halve_span(w.start, w.end) {
                out.push(Entry::Duplicate(RateWindow { end, ..*w }));
            }
        }
        Entry::Partition(p) => {
            if let Some(end) = halve_span(p.start, p.end) {
                out.push(Entry::Partition(Partition { end, ..*p }));
            }
        }
        Entry::Crash(c) => {
            if c.down_for >= 2 {
                out.push(Entry::Crash(Crash {
                    down_for: c.down_for / 2,
                    ..*c
                }));
            }
            if matches!(c.restart, Restart::Durable { .. }) {
                out.push(Entry::Crash(Crash {
                    restart: Restart::Amnesia,
                    ..*c
                }));
            }
        }
        Entry::Perturbation(p) => {
            if p.k >= 2 {
                out.push(Entry::Perturbation(Perturbation { k: p.k / 2, ..*p }));
            }
        }
        Entry::Behavior(b) => {
            if let Some(end) = halve_span(b.start, b.end) {
                out.push(Entry::Behavior(Behavior { end, ..b.clone() }));
            }
            match &b.kind {
                Misbehavior::SelectiveForward { kinds, p } if kinds.len() >= 2 => {
                    out.push(Entry::Behavior(Behavior {
                        kind: Misbehavior::SelectiveForward {
                            kinds: kinds[..kinds.len() / 2].to_vec(),
                            p: *p,
                        },
                        ..b.clone()
                    }));
                }
                Misbehavior::SybilCluster { k, center } if *k >= 2 => {
                    out.push(Entry::Behavior(Behavior {
                        kind: Misbehavior::SybilCluster {
                            k: k / 2,
                            center: *center,
                        },
                        ..b.clone()
                    }));
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::id::NodeId;

    fn fid(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CampaignConfig::new(3, 1);
        let s = sample_scenario(&mut rng, &cfg);
        let back = Scenario::from_json(&s.to_json()).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn scenario_parser_rejects_garbage() {
        assert!(Scenario::from_json("not json").is_err());
        assert!(Scenario::from_json("{}").is_err());
    }

    #[test]
    fn sampled_scenarios_are_valid_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = CampaignConfig::new(9, 1);
        for _ in 0..200 {
            let s = sample_scenario(&mut rng, &cfg);
            assert!(s.plan.validate().is_ok());
            assert!(s.plan.entry_count() >= 1 || s.plan.is_empty());
            assert!(s.horizon() <= 40, "windows must stay bounded");
            assert!(s.n >= cfg.min_n && s.n <= cfg.max_n);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = CampaignConfig::new(17, 1);
        let s = sample_scenario(&mut rng, &cfg);
        let replayed = Scenario::from_json(&s.to_json()).expect("parse");
        assert_eq!(run_scenario(&s), run_scenario(&replayed));
    }

    #[test]
    fn small_seeded_campaign_is_fully_classified() {
        let cfg = CampaignConfig {
            seed: 1,
            scenarios: 30,
            min_n: 8,
            max_n: 24,
            budget: 5_000,
        };
        let report = run_campaign(&cfg, &default_failure);
        assert_eq!(report.total, 30);
        assert!(
            report.clean(),
            "campaign failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (&f.result.outcome, f.scenario.to_json()))
                .collect::<Vec<_>>()
        );
        assert!(report.recovered > 0, "most scenarios must recover");
    }

    #[test]
    fn shrinker_reduces_to_the_single_relevant_entry() {
        // Synthetic oracle: the "failure" is simply the presence of a
        // crash of this node — every other entry is noise the shrinker
        // must strip, and the crash's own parameters must be walked to
        // their minimum.
        let victim = fid(0.25);
        let scenario = Scenario {
            n: 12,
            net_seed: 5,
            start: Start::Ring,
            budget: 100,
            plan: FaultPlan::new(2)
                .with_drop(1, 9, 0.5)
                .with_duplicate(2, 10, 0.4)
                .with_partition(3, 8, fid(0.5))
                .with_perturbation(4, 3)
                .with_durable_crash(5, victim, 6, 4)
                .with_behavior(
                    2,
                    9,
                    fid(0.75),
                    Misbehavior::LyingState {
                        mode: LieMode::Scramble,
                    },
                ),
        };
        let fails = |c: &Scenario| c.plan.crashes.iter().any(|cr| cr.node == victim);
        assert!(fails(&scenario));
        let shrunk = shrink(&scenario, &fails);
        assert_eq!(shrunk.plan.entry_count(), 1, "noise must be stripped");
        let c = &shrunk.plan.crashes[0];
        assert_eq!(c.node, victim);
        assert_eq!(c.down_for, 1, "downtime must be walked to its minimum");
        assert_eq!(
            c.restart,
            Restart::Amnesia,
            "durable restart must simplify away"
        );
    }

    #[test]
    fn planted_drop_lin_mutant_is_caught_and_shrunk() {
        // The planted protocol mutant: a node that silently refuses to
        // forward Lin. Linearization forwards without storing, so on an
        // unstable start the refusals destroy sole carriers and the
        // network disconnects instead of converging. The mutant hides
        // among benign noise entries; the campaign oracle here is the
        // strictest one — "the protocol must always recover" — and the
        // shrinker must strip the noise and hand back (at most 3
        // entries of) the mutant itself, replayable from JSON.
        let ids = evenly_spaced_ids(16);
        let scenario = Scenario {
            n: 16,
            net_seed: 5,
            start: Start::Sparse { extra: 2 },
            budget: 2_000,
            plan: FaultPlan::new(5)
                .with_drop(2, 6, 0.2)
                .with_duplicate(3, 8, 0.3)
                .with_perturbation(4, 2)
                .with_behavior(
                    1,
                    60,
                    ids[12],
                    Misbehavior::SelectiveForward {
                        kinds: vec![MessageKind::Lin],
                        p: 1.0,
                    },
                ),
        };
        let strict = |r: &RunResult| !matches!(r.outcome, Outcome::Recovered { .. });
        let result = run_scenario(&scenario);
        assert!(
            strict(&result),
            "the mutant must prevent recovery: {:?}",
            result.outcome
        );
        let shrunk = shrink(&scenario, &|c| strict(&run_scenario(c)));
        assert!(
            shrunk.plan.entry_count() <= 3,
            "reproducer must have ≤3 entries: {}",
            shrunk.to_json()
        );
        assert!(
            shrunk.plan.behaviors.iter().any(
                |b| matches!(&b.kind, Misbehavior::SelectiveForward { kinds, .. }
                    if kinds.contains(&MessageKind::Lin))
            ),
            "the mutant itself must survive shrinking"
        );
        // The reproducer replays deterministically from its JSON form.
        let json = shrunk.to_json();
        let replayed = Scenario::from_json(&json).expect("parse");
        assert_eq!(replayed, shrunk);
        let a = run_scenario(&replayed);
        let b = run_scenario(&shrunk);
        assert_eq!(a, b, "replay must be bit-deterministic");
        assert!(strict(&a), "the reproducer must still fail");
    }
}
