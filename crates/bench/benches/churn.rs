//! Bench for experiments E5/E6: the cost of recovering the sorted ring
//! after a join or a leave on a stationary network.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use swn_core::config::ProtocolConfig;
use swn_core::id::NodeId;
use swn_harness::testbed::harmonic_network;
use swn_sim::churn::{join, leave};

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_join");
    group.sample_size(10);
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::new("recover", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    let net = harmonic_network(n, ProtocolConfig::default(), seed);
                    let ids = net.ids();
                    let contact =
                        ids[usize::try_from(seed * 7).expect("seed fits usize") % ids.len()];
                    let slot =
                        usize::try_from(seed * 13).expect("seed fits usize") % (ids.len() - 1);
                    let new_id = NodeId::from_bits(
                        ids[slot].bits() + (ids[slot + 1].bits() - ids[slot].bits()) / 2,
                    );
                    (net, new_id, contact)
                },
                |(mut net, new_id, contact)| {
                    let rep = join(&mut net, new_id, contact, 100_000);
                    assert!(rep.recovered());
                    black_box(rep.rounds)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_leave");
    group.sample_size(10);
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::new("recover", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    let net = harmonic_network(n, ProtocolConfig::default(), seed);
                    let ids = net.ids();
                    let victim = ids[1 + usize::try_from(seed * 11).expect("seed fits usize")
                        % (ids.len() - 2)];
                    (net, victim)
                },
                |(mut net, victim)| {
                    let rep = leave(&mut net, victim, 200_000);
                    assert!(rep.recovered());
                    black_box(rep.rounds)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_leave);
criterion_main!(benches);
