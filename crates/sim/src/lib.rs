//! # swn-sim — discrete-event simulator for the self-stabilization process
//!
//! Implements exactly the computational model of Section II: unbounded,
//! unordered, lossless channels with fair receipt; weakly fair execution
//! of the receive/regular actions; atomic actions in a sequential
//! interleaving. One simulator **round** executes every node's regular
//! action once and offers every in-flight message for delivery, which is
//! the time unit all experiments are reported in.
//!
//! * [`channel`] — the unordered channel and the delivery policies
//!   (including adversarial random-delay asynchrony);
//! * [`network`] — the node table and the deterministic, seeded round
//!   loop;
//! * [`init`] — adversarial initial-state families (random weakly
//!   connected digraphs, stars, cliques, corrupted rings, ...);
//! * [`trace`] — per-round message/event accounting;
//! * [`convergence`] — run-to-stabilization with phase milestones;
//! * [`churn`] — join/leave injection and recovery measurement
//!   (Theorem 4.24);
//! * [`parallel`] — multi-seed trial execution across threads;
//! * [`persist`] — JSON checkpointing of global states;
//! * [`slots`] — the dense id→slot index behind O(1) message routing,
//!   with the incrementally maintained sorted order;
//! * [`sched`] — the active-set scheduler: O(work) rounds and
//!   quiescence detection on stabilized networks;
//! * [`obs`] — zero-overhead observability: pluggable sinks, sampled
//!   phase timers, online histograms, causal repair tracing and the
//!   anomaly-triggered flight recorder;
//! * [`metrics`] — the live metrics plane: sharded lock-free counters,
//!   gauges and histograms with Prometheus-style exposition;
//! * [`faults`] — deterministic fault injection (loss/duplication
//!   windows, partitions, crash+restart, state perturbation) and the
//!   sole-carrier recovery watchdog.
//!
//! ## Example
//!
//! ```
//! use swn_core::prelude::*;
//! use swn_sim::init::{generate, InitialTopology};
//! use swn_sim::convergence::run_to_ring;
//!
//! let ids = evenly_spaced_ids(16);
//! let cfg = ProtocolConfig::default();
//! let mut net = generate(InitialTopology::Star, &ids, cfg, 42).into_network(42);
//! let report = run_to_ring(&mut net, 10_000);
//! assert!(report.stabilized());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod chaos;
pub mod churn;
pub mod convergence;
pub mod faults;
pub mod init;
pub mod metrics;
pub mod network;
pub mod obs;
pub mod parallel;
pub mod persist;
pub mod sched;
pub mod slots;
pub mod trace;

pub use channel::DeliveryPolicy;
pub use network::Network;
pub use sched::ScheduleMode;
