//! Shared experiment fixtures.

use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_core::invariants::make_sorted_ring;
use swn_sim::Network;
use swn_topology::Graph;

/// A protocol network of `n` evenly spaced nodes started from the sorted
/// ring and warmed up for `warmup` rounds so the move-and-forget tokens
/// approach their stationary distribution. This is the "stable state"
/// fixture of experiments E2–E7.
pub fn stabilized_network(n: usize, cfg: ProtocolConfig, seed: u64, warmup: u64) -> Network {
    let ids = evenly_spaced_ids(n);
    let mut net = Network::new(make_sorted_ring(&ids, cfg), seed);
    net.run(warmup);
    net
}

/// The routing graph of a stabilized network: stored links only (CP view),
/// indexed by ring rank.
pub fn stabilized_graph(n: usize, cfg: ProtocolConfig, seed: u64, warmup: u64) -> Graph {
    let net = stabilized_network(n, cfg, seed, warmup);
    Graph::from_view(&net.view(), swn_core::views::View::Cp)
}

/// Default warmup heuristic: enough rounds for the token walks to mix at
/// scale `n` without making the quadratically priced large sizes
/// unaffordable.
pub fn default_warmup(n: usize) -> u64 {
    (8 * n as u64).clamp(2_000, 40_000)
}

/// The *stationary* stable state, constructed directly: the sorted ring
/// with every long-range link sampled from the 1-harmonic distribution
/// (Fact 4.21) instead of being walked there.
///
/// Diffusive mixing to the harmonic law takes Θ(n²) rounds at the largest
/// scales, which a message-level simulation cannot afford; experiments
/// that *assume* the stable state (probing hops — Lemma 4.23; join/leave
/// recovery — Theorem 4.24; stable-state robustness) use this fixture,
/// while the convergence/distribution experiments (E1, E2) earn the
/// stationary state honestly from the protocol itself.
pub fn harmonic_network(n: usize, cfg: ProtocolConfig, seed: u64) -> Network {
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};
    use swn_core::node::Node;
    use swn_topology::distribution::sample_harmonic;

    let ids = evenly_spaced_ids(n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4a12_77b3);
    let nodes: Vec<Node> = make_sorted_ring(&ids, cfg)
        .into_iter()
        .enumerate()
        .map(|(rank, node)| {
            let d = sample_harmonic(n / 2, &mut rng);
            let target = if rng.random_bool(0.5) {
                (rank + d) % n
            } else {
                (rank + n - d) % n
            };
            Node::with_state(
                node.id(),
                node.left(),
                node.right(),
                ids[target],
                node.ring(),
                cfg,
            )
        })
        .collect();
    // Give the network a short shakedown so reslrl traffic is in flight
    // and ages are sensible, without perturbing the seeded distribution.
    let mut net = Network::new(nodes, seed);
    net.run(3);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::invariants::is_sorted_ring;
    use swn_topology::connectivity::is_weakly_connected;

    #[test]
    fn stabilized_network_is_a_sorted_ring_with_spread_tokens() {
        let net = stabilized_network(64, ProtocolConfig::default(), 1, 500);
        let s = net.snapshot();
        assert!(is_sorted_ring(&s));
        // After 500 rounds a fair share of tokens are away from origin.
        let away = s.nodes().iter().filter(|n| n.lrl() != n.id()).count();
        assert!(away > 16, "only {away}/64 tokens moved");
    }

    #[test]
    fn stabilized_graph_is_connected_and_ring_backed() {
        let g = stabilized_graph(32, ProtocolConfig::default(), 2, 300);
        assert!(is_weakly_connected(&g));
        // Ring edges between consecutive ranks exist in CP.
        for i in 0..31 {
            assert!(g
                .neighbors(i)
                .contains(&u32::try_from(i + 1).expect("fits u32")));
        }
        assert!(g.neighbors(31).contains(&0), "seam edge present");
    }

    #[test]
    fn harmonic_network_is_stable_with_harmonic_lengths() {
        let net = harmonic_network(512, ProtocolConfig::default(), 9);
        let s = net.snapshot();
        assert!(is_sorted_ring(&s));
        let lengths = swn_topology::distribution::lrl_lengths(&s);
        assert!(lengths.len() > 450, "most nodes must have a live lrl");
        let ks = swn_topology::distribution::ks_to_harmonic(&lengths, 256);
        assert!(ks < 0.12, "seeded lengths must be harmonic: KS = {ks}");
    }

    #[test]
    fn warmup_heuristic_is_clamped() {
        assert_eq!(default_warmup(4), 2_000);
        assert_eq!(default_warmup(1000), 8_000);
        assert_eq!(default_warmup(100_000), 40_000);
    }
}
