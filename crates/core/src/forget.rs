//! The forget probability φ(α) of the move-and-forget process.
//!
//! Chaintreau, Fraigniaud and Lebhar (ICALP 2008, paper's reference [4])
//! let every long-range token perform a random walk and *forget* (reset to
//! its origin) with an age-dependent probability. Section III.D of the
//! IPPS 2012 paper adopts it verbatim:
//!
//! ```text
//! φ(α) = 0                                           if α ∈ {0, 1, 2}
//! φ(α) = 1 − ((α−1)/α) · (ln(α−1)/ln α)^(1+ε)        if α ≥ 3
//! ```
//!
//! where ε > 0 is a fixed, arbitrarily small protocol parameter. The
//! resulting age distribution makes the token's position converge to the
//! k-harmonic distribution, independent of the lattice dimension k.

/// Computes the forget probability `φ(α)` for a link of age `alpha` with
/// protocol parameter `epsilon`.
///
/// Always returns a value in `[0, 1]`.
///
/// # Panics
/// Panics if `epsilon` is not finite and positive.
pub fn phi(alpha: u64, epsilon: f64) -> f64 {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be a positive finite number, got {epsilon}"
    );
    if alpha <= 2 {
        return 0.0;
    }
    let a = alpha as f64;
    let ratio = (a - 1.0) / a;
    let log_ratio = ((a - 1.0).ln() / a.ln()).powf(1.0 + epsilon);
    (1.0 - ratio * log_ratio).clamp(0.0, 1.0)
}

/// The survival probability of a token to age `alpha`, i.e. the probability
/// that a fresh link is *not* forgotten in any of the first `alpha`
/// move-and-forget steps:  `∏_{i=1..alpha} (1 − φ(i))`.
///
/// Used by the harness to check the claimed O(n) w.h.p. bound on the
/// maximal link age (proof of Theorem 4.22).
pub fn survival(alpha: u64, epsilon: f64) -> f64 {
    let mut s = 1.0f64;
    for i in 1..=alpha {
        s *= 1.0 - phi(i, epsilon);
        if s == 0.0 {
            break;
        }
    }
    s
}

/// Expected age of a link at the forget event, truncated at `max_age`
/// (numerical helper for the harness; the true expectation is finite for
/// every ε > 0).
pub fn expected_age(epsilon: f64, max_age: u64) -> f64 {
    // E[A] = Σ_{a≥0} P(A > a) = Σ survival(a); accumulate incrementally.
    let mut total = 0.0f64;
    let mut surv = 1.0f64;
    for a in 1..=max_age {
        surv *= 1.0 - phi(a, epsilon);
        total += surv;
        if surv < 1e-12 {
            break;
        }
    }
    1.0 + total
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.1;

    #[test]
    fn young_links_never_forgotten() {
        assert_eq!(phi(0, EPS), 0.0);
        assert_eq!(phi(1, EPS), 0.0);
        assert_eq!(phi(2, EPS), 0.0);
    }

    #[test]
    fn phi_is_a_probability() {
        for alpha in 3..100_000 {
            let p = phi(alpha, EPS);
            assert!((0.0..=1.0).contains(&p), "phi({alpha}) = {p} out of range");
        }
    }

    #[test]
    fn phi_positive_from_three() {
        assert!(phi(3, EPS) > 0.0);
        assert!(phi(4, EPS) > 0.0);
    }

    #[test]
    fn phi_decreases_for_large_alpha() {
        // φ(α) ≈ (1 + (1+ε)/ln α)/α for large α: strictly decreasing tail.
        let mut prev = phi(10, EPS);
        for alpha in 11..10_000u64 {
            let cur = phi(alpha, EPS);
            assert!(
                cur <= prev + 1e-15,
                "phi not decreasing at {alpha}: {cur} > {prev}"
            );
            prev = cur;
        }
    }

    #[test]
    fn phi_asymptotics_match_one_over_alpha() {
        // For large α, α·φ(α) → 1 (the (1+ε)/ln α correction vanishes).
        let a = 1_000_000u64;
        let scaled = a as f64 * phi(a, EPS);
        assert!(
            (scaled - 1.0).abs() < 0.15,
            "α·φ(α) = {scaled}, expected ≈ 1"
        );
    }

    #[test]
    fn larger_epsilon_forgets_faster() {
        for alpha in [3u64, 10, 100, 1000] {
            assert!(
                phi(alpha, 0.5) >= phi(alpha, 0.05),
                "phi not monotone in epsilon at alpha={alpha}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be")]
    fn rejects_zero_epsilon() {
        let _ = phi(10, 0.0);
    }

    #[test]
    fn survival_monotone_decreasing() {
        let mut prev = 1.0;
        for a in 0..1000 {
            let s = survival(a, EPS);
            assert!(s <= prev + 1e-15);
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn survival_has_heavy_tail() {
        // The tail is P(A > α) ≈ c / (α · ln^{1+ε} α) — polynomially, not
        // geometrically, decaying. At α = 1000 that is ≈ 4e-4; a geometric
        // tail with the same φ(10) would be < 1e-40.
        let s = survival(1000, EPS);
        assert!(s > 5e-5, "tail too light: {s}");
        assert!(s < 5e-3, "tail too heavy: {s}");
        // The asymptotic form: α · ln^{1+ε}(α) · P(A > α) is ~constant.
        let scaled = |a: u64| a as f64 * (a as f64).ln().powf(1.0 + EPS) * survival(a, EPS);
        let (s1, s2) = (scaled(500), scaled(5000));
        assert!(
            (s1 / s2 - 1.0).abs() < 0.25,
            "tail does not follow 1/(α ln^(1+ε) α): {s1} vs {s2}"
        );
    }

    #[test]
    fn expected_age_is_finite_and_moderate() {
        let e = expected_age(EPS, 10_000_000);
        assert!(e > 3.0, "tokens must live at least past the protected ages");
        assert!(e.is_finite());
    }
}
