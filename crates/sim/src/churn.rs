//! Topology updates: joining and leaving nodes (Section IV.G).
//!
//! **Join**: a new node enters knowing one arbitrary contact; the
//! linearization process carries it to its sorted position in
//! O(ln^(2+ε) n) steps (Theorem 4.24, first part).
//!
//! **Leave**: a node vanishes together with its links. Its former
//! neighbours detect the dangling pointers (modelled here as bounce
//! detection when a message's destination no longer exists) and reset
//! them; the first probe whose long-range link crosses the gap fails and
//! repairs it, after which linearization closes the ring again in
//! O(ln^(2+ε) n) steps (Theorem 4.24, second part).

use crate::network::Network;
use crate::obs::Event;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use swn_core::config::ProtocolConfig;
use swn_core::id::{Extended, NodeId};
use swn_core::invariants::is_sorted_ring_view;
use swn_core::message::Message;
use swn_core::node::Node;

/// Outcome of a churn-recovery measurement.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Rounds until the sorted ring held again.
    pub rounds: Option<u64>,
    /// Messages sent during recovery.
    pub messages: u64,
    /// Messages that carried the tracked identifier (joins only),
    /// including the newcomer's own steady advertisements.
    pub tracked_messages: u64,
    /// Distinct nodes that forwarded the tracked identifier in `lin`
    /// messages (joins only): the newcomer's integration path — the
    /// paper's "steps" of Theorem 4.24.
    pub path_nodes: usize,
    /// The round budget this measurement ran under, counted from the
    /// fault instant (the `measure_recovery` call), *not* from the start
    /// of the run. Lets callers tell "did not recover in `budget`
    /// rounds" apart from "the budget was spent before the fault even
    /// landed" when composing measurements.
    pub budget: u64,
}

impl RecoveryReport {
    /// Did the network recover within the round budget?
    pub fn recovered(&self) -> bool {
        self.rounds.is_some()
    }

    /// True when the watch ran its full budget without recovering.
    pub fn budget_exhausted(&self) -> bool {
        self.rounds.is_none()
    }
}

/// Injects a new node that knows only `contact`, then runs until the
/// sorted ring holds again (counting the new node). The newcomer stores
/// the contact in the appropriate neighbour slot and announces itself,
/// exactly "initially connected with an arbitrary node".
pub fn join(net: &mut Network, new_id: NodeId, contact: NodeId, max_rounds: u64) -> RecoveryReport {
    let cfg = *net
        .node(contact)
        .expect("join contact must be a live node")
        .config();
    let (l, r) = if contact < new_id {
        (Extended::Fin(contact), Extended::PosInf)
    } else {
        (Extended::NegInf, Extended::Fin(contact))
    };
    let newcomer = Node::with_state(new_id, l, r, new_id, None, cfg);
    assert!(net.insert_node(newcomer), "id {new_id:?} already present");
    net.send_external(contact, Message::Lin(new_id));
    net.track_id(Some(new_id));
    let start = net.round();
    let mut report = measure_recovery(net, max_rounds);
    report.path_nodes = net.tracked_forwarder_count();
    net.track_id(None);
    net.emit(Event::Span {
        label: "join".to_string(),
        start,
        end: net.round(),
    });
    report
}

/// Removes `victim` and models departure detection: every node holding the
/// victim's id has that variable reset (dangling `l`/`r` become `±∞`,
/// dangling `lrl` returns to origin, dangling `ring` is cleared), then
/// runs until the sorted ring holds again.
pub fn leave(net: &mut Network, victim: NodeId, max_rounds: u64) -> RecoveryReport {
    let removed = net.remove_node(victim);
    assert!(removed.is_some(), "victim {victim:?} not in network");
    let ids = net.ids();
    for id in ids {
        let Some(node) = net.node(id) else { continue };
        let mut l = node.left();
        let mut r = node.right();
        let mut lrl = node.lrl();
        let mut ring = node.ring();
        let mut dirty = false;
        if l == Extended::Fin(victim) {
            l = Extended::NegInf;
            dirty = true;
        }
        if r == Extended::Fin(victim) {
            r = Extended::PosInf;
            dirty = true;
        }
        if lrl == victim {
            lrl = id;
            dirty = true;
        }
        if ring == Some(victim) {
            ring = None;
            dirty = true;
        }
        if dirty {
            let cfg = *node.config();
            net.remove_node(id);
            net.insert_node(Node::with_state(id, l, r, lrl, ring, cfg));
        }
    }
    let start = net.round();
    let report = measure_recovery(net, max_rounds);
    net.emit(Event::Span {
        label: "leave".to_string(),
        start,
        end: net.round(),
    });
    report
}

/// Picks a uniformly random non-extremal victim (the paper's leave
/// analysis closes an interior gap; removing an extremum is the easier
/// case) and removes it.
pub fn leave_random(net: &mut Network, seed: u64, max_rounds: u64) -> (NodeId, RecoveryReport) {
    let ids = net.ids();
    assert!(
        ids.len() >= 4,
        "need at least 4 nodes to remove an interior one"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let victim = ids[rng.random_range(1..ids.len() - 1)];
    let report = leave(net, victim, max_rounds);
    (victim, report)
}

/// Steps the network until the sorted ring holds again, for at most
/// `max_rounds` rounds **counted from this call** (the fault instant) —
/// a caller that warmed the network first does not eat into the budget.
/// Returns the rounds-to-recovery (`None` on budget exhaustion) plus
/// message accounting; the budget itself is echoed in the report.
pub fn measure_recovery(net: &mut Network, max_rounds: u64) -> RecoveryReport {
    let mut report = RecoveryReport {
        budget: max_rounds,
        ..RecoveryReport::default()
    };
    let mut sorted = is_sorted_ring_view(&net.view());
    if sorted {
        report.rounds = Some(0);
        return report;
    }
    for k in 1..=max_rounds {
        let stats = net.step();
        report.messages += stats.total_sent();
        report.tracked_messages += stats.tracked_sent;
        if stats.links_changed {
            sorted = is_sorted_ring_view(&net.view());
        }
        if sorted {
            report.rounds = Some(k);
            return report;
        }
    }
    report
}

/// Convenience: a fresh stable network of `n` evenly spaced nodes that has
/// additionally run `warmup` rounds so the long-range links have spread.
pub fn stable_network(n: usize, cfg: ProtocolConfig, seed: u64, warmup: u64) -> Network {
    let ids = swn_core::id::evenly_spaced_ids(n);
    let mut net = Network::new(swn_core::invariants::make_sorted_ring(&ids, cfg), seed);
    net.run(warmup);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    #[test]
    fn join_integrates_newcomer() {
        let mut net = stable_network(16, ProtocolConfig::default(), 1, 20);
        let ids = net.ids();
        let contact = ids[10];
        // A fresh id strictly inside an existing gap.
        let new_id = NodeId::from_bits(ids[3].bits() / 2 + ids[4].bits() / 2);
        let report = join(&mut net, new_id, contact, 2000);
        assert!(report.recovered(), "join did not re-stabilize: {report:?}");
        assert_eq!(net.len(), 17);
        let s = net.snapshot();
        let i = s.index_of(new_id).expect("newcomer present");
        let node = &s.nodes()[i];
        assert_eq!(node.left().fin(), Some(ids[3]));
        assert_eq!(node.right().fin(), Some(ids[4]));
    }

    #[test]
    fn join_at_the_far_end_works() {
        let mut net = stable_network(8, ProtocolConfig::default(), 2, 10);
        let ids = net.ids();
        // New global maximum, contacting the global minimum.
        let new_id = NodeId::from_bits(ids.last().unwrap().bits() + 1000);
        let report = join(&mut net, new_id, ids[0], 2000);
        assert!(report.recovered(), "{report:?}");
        let s = net.snapshot();
        let node = &s.nodes()[s.index_of(new_id).unwrap()];
        assert!(node.right().is_pos_inf());
        assert_eq!(node.ring(), Some(ids[0]), "new max must ring back to min");
    }

    #[test]
    fn leave_interior_heals_gap() {
        let mut net = stable_network(16, ProtocolConfig::default(), 3, 50);
        let ids = net.ids();
        let victim = ids[7];
        let report = leave(&mut net, victim, 4000);
        assert!(report.recovered(), "leave did not heal: {report:?}");
        assert_eq!(net.len(), 15);
        let s = net.snapshot();
        let left = &s.nodes()[s.index_of(ids[6]).unwrap()];
        assert_eq!(left.right().fin(), Some(ids[8]), "gap not closed");
    }

    #[test]
    fn leave_extremum_recovers_ring_edges() {
        let mut net = stable_network(10, ProtocolConfig::default(), 4, 30);
        let ids = net.ids();
        let report = leave(&mut net, ids[0], 4000);
        assert!(report.recovered(), "{report:?}");
        let s = net.snapshot();
        let new_min = &s.nodes()[s.index_of(ids[1]).unwrap()];
        let max = &s.nodes()[s.index_of(*ids.last().unwrap()).unwrap()];
        assert_eq!(new_min.ring(), Some(max.id()));
        assert_eq!(max.ring(), Some(new_min.id()));
    }

    #[test]
    fn leave_random_removes_interior() {
        let mut net = stable_network(12, ProtocolConfig::default(), 5, 30);
        let ids = net.ids();
        let (victim, report) = leave_random(&mut net, 99, 4000);
        assert_ne!(victim, ids[0]);
        assert_ne!(victim, *ids.last().unwrap());
        assert!(report.recovered());
    }

    #[test]
    fn sequential_churn_storm() {
        // Several joins and leaves in sequence; the network must recover
        // each time.
        let mut net = stable_network(12, ProtocolConfig::default(), 6, 20);
        let mut next_bits: u64 = 1 << 40;
        for step in 0..4 {
            let ids = net.ids();
            if step % 2 == 0 {
                let new_id = NodeId::from_bits(next_bits);
                next_bits = next_bits.wrapping_mul(3).wrapping_add(12345) | 1;
                if net.node(new_id).is_some() {
                    continue;
                }
                let contact = ids[step % ids.len()];
                let rep = join(&mut net, new_id, contact, 3000);
                assert!(rep.recovered(), "join {step} failed");
            } else {
                let (_, rep) = leave_random(&mut net, step as u64, 3000);
                assert!(rep.recovered(), "leave {step} failed");
            }
        }
    }

    #[test]
    fn recovery_budget_counts_from_the_fault_instant() {
        // A long pre-run must not eat into the recovery budget, and the
        // budget is echoed in the report so callers can tell "did not
        // recover in k rounds" from "k was spent before the fault".
        let mut net = stable_network(8, ProtocolConfig::default(), 11, 0);
        net.run(500);
        let ids = net.ids();
        let rep = leave(&mut net, ids[3], 4000);
        assert_eq!(rep.budget, 4000);
        assert!(rep.recovered(), "{rep:?}");
        assert!(!rep.budget_exhausted());
        // An impossible budget exhausts honestly: rounds = None, budget
        // still reported.
        let mut net2 = stable_network(8, ProtocolConfig::default(), 12, 0);
        net2.run(500);
        let ids2 = net2.ids();
        let rep2 = leave(&mut net2, ids2[3], 1);
        assert!(rep2.budget_exhausted(), "{rep2:?}");
        assert_eq!(rep2.budget, 1);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn joining_duplicate_id_panics() {
        let mut net = stable_network(4, ProtocolConfig::default(), 7, 0);
        let ids = net.ids();
        let _ = join(&mut net, ids[2], ids[0], 10);
    }

    #[test]
    #[should_panic(expected = "not in network")]
    fn leaving_unknown_id_panics() {
        let mut net = stable_network(4, ProtocolConfig::default(), 8, 0);
        let _ = leave(&mut net, fid(0.12345), 10);
    }
}
