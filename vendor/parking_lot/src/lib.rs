//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with parking_lot's ergonomics: `lock()`
//! returns the guard directly and poisoning is transparently ignored (a
//! panicked critical section does not wedge every later locker). The
//! std mutex is slower under contention than the real parking_lot, but
//! the workspace locks are all short and uncontended by design.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_critical_section() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 5);
    }
}
