//! Deterministic fault injection and the recovery watchdog.
//!
//! The paper's self-stabilization claim (Theorems 4.3/4.18/4.24) is a
//! statement about recovery from *transient faults*, yet the base
//! simulator only perturbs the start state: [`Channel`] is lossless and
//! nodes never fail mid-run. This module injects faults into the
//! running protocol, deterministically:
//!
//! * a seedable, serde-serializable [`FaultPlan`] — per-round message
//!   drop/duplication rate windows, transient bidirectional
//!   [`Partition`]s, node [`Crash`]+restart with channel loss, and
//!   random [`Perturbation`] of k nodes' neighbour state;
//! * a [`FaultInjector`] owned by the network (`Network::attach_faults`)
//!   with its **own RNG stream** seeded from the plan, so the protocol
//!   computation's RNG draws are untouched: a network with an *empty*
//!   plan attached replays the fault-free run bit-for-bit, and the
//!   detached path stays byte-identical via a `FAULTS` const-generic
//!   arm of the round loop (see `Network::step`);
//! * a convergence **watchdog** ([`watch_recovery`]) over the union
//!   knowledge graph (the CC view: stored links ∪ in-flight payloads).
//!   Linearize *forwards without storing*, so a dropped `lin` message
//!   can carry the sole remaining reference to an identifier. Knowledge
//!   is closed under the protocol — no rule invents an identifier — so
//!   once CC disconnects it can never reconnect, and the watchdog
//!   reports the culprit drop as root cause instead of letting the run
//!   time out silently. (An injected [`Perturbation`] *can* re-link
//!   components by oracle, so E10 schedules perturbations before, not
//!   after, its loss windows.)
//!
//! [`Channel`]: crate::channel::Channel

use crate::network::Network;
use crate::obs::causal::CascadeReport;
use crate::obs::Event;
use rand::rngs::StdRng;
use rand::seq::SliceRandom as _;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use swn_core::id::NodeId;
use swn_core::invariants::{component_labels_view, is_sorted_ring_view, weakly_connected_view};
use swn_core::message::Message;
use swn_core::views::View;

/// Cap on the retained drop log. Old entries are evicted from the
/// front, so culprit analysis always sees the most recent drops.
const DROP_LOG_CAP: usize = 8192;

/// A message-loss (or duplication) probability active over a half-open
/// round window `start..end`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateWindow {
    /// First round (inclusive) the rate applies to.
    pub start: u64,
    /// First round (exclusive) the rate no longer applies to.
    pub end: u64,
    /// Per-message probability in `[0, 1]`.
    pub p: f64,
}

impl RateWindow {
    /// True when the window covers `round` with a non-zero rate. A
    /// `p = 0` window never consumes injector RNG, so it is exactly
    /// equivalent to no window at all.
    pub fn active(&self, round: u64) -> bool {
        self.p > 0.0 && round >= self.start && round < self.end
    }
}

/// A transient bidirectional partition: while active, every message
/// between the two sides of the id-space cut at `cut` is dropped
/// (nodes `≤ cut` on one side, `> cut` on the other).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// First round (inclusive) the partition holds.
    pub start: u64,
    /// First round (exclusive) the partition is healed.
    pub end: u64,
    /// The id-space cut point.
    pub cut: NodeId,
}

impl Partition {
    /// True when the partition is in force at `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.start && round < self.end
    }

    /// True when the partition (if active) separates `a` from `b`.
    pub fn cuts(&self, a: NodeId, b: NodeId) -> bool {
        (a <= self.cut) != (b <= self.cut)
    }
}

/// A node crash with restart: at `round` the node loses its volatile
/// state (reset to the blank joining state) and its channel content,
/// then sits out `down_for` rounds — messages addressed to it while
/// down are lost. It restarts with blank state; its former neighbours'
/// stored pointers to it are what reintegrate it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The round the crash lands in.
    pub round: u64,
    /// The crashing node.
    pub node: NodeId,
    /// Rounds the node stays down (min 1).
    pub down_for: u64,
}

/// A random corruption of `k` live nodes' neighbour state at `round`:
/// each victim's `r`, `lrl` and `ring` variables are rewritten to
/// uniformly random live identifiers (its `l` pointer is kept, so the
/// stored left-pointer chain keeps the knowledge graph weakly connected
/// — the damage is always recoverable by Theorem 4.3 unless a
/// subsequent loss fault severs a sole carrier). Ages and probe phases
/// reset with the rebuild.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// The round the perturbation lands in.
    pub round: u64,
    /// Number of victims (clamped to the live population).
    pub k: usize,
}

/// A deterministic, serializable schedule of faults. Attach to a
/// network with `Network::attach_faults`; the same plan + network seed
/// replays the exact same faulted computation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream (drop/duplicate coin
    /// flips, perturbation victim/target picks). Independent of the
    /// network seed by construction.
    pub seed: u64,
    /// Message-loss rate windows. For overlapping windows the first
    /// active one wins.
    pub drop: Vec<RateWindow>,
    /// Message-duplication rate windows (an extra copy is enqueued).
    pub duplicate: Vec<RateWindow>,
    /// Transient bidirectional partitions.
    pub partitions: Vec<Partition>,
    /// Node crashes with restart.
    pub crashes: Vec<Crash>,
    /// Random neighbour-state perturbations.
    pub perturbations: Vec<Perturbation>,
}

impl FaultPlan {
    /// An empty plan with the given injector seed. An empty plan
    /// attached to a network changes nothing: no RNG is consumed and
    /// the computation is bit-for-bit the fault-free one.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a message-loss window over rounds `start..end`.
    #[must_use]
    pub fn with_drop(mut self, start: u64, end: u64, p: f64) -> Self {
        self.drop.push(RateWindow { start, end, p });
        self
    }

    /// Adds a duplication window over rounds `start..end`.
    #[must_use]
    pub fn with_duplicate(mut self, start: u64, end: u64, p: f64) -> Self {
        self.duplicate.push(RateWindow { start, end, p });
        self
    }

    /// Adds a bidirectional partition over rounds `start..end`.
    #[must_use]
    pub fn with_partition(mut self, start: u64, end: u64, cut: NodeId) -> Self {
        self.partitions.push(Partition { start, end, cut });
        self
    }

    /// Adds a crash of `node` at `round`, down for `down_for` rounds.
    #[must_use]
    pub fn with_crash(mut self, round: u64, node: NodeId, down_for: u64) -> Self {
        self.crashes.push(Crash {
            round,
            node,
            down_for,
        });
        self
    }

    /// Adds a `k`-victim state perturbation at `round`.
    #[must_use]
    pub fn with_perturbation(mut self, round: u64, k: usize) -> Self {
        self.perturbations.push(Perturbation { round, k });
        self
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty()
            && self.duplicate.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.perturbations.is_empty()
    }

    /// Checks structural validity: probabilities in `[0, 1]`, windows
    /// non-inverted, crash downtimes and perturbation sizes non-zero.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.drop.iter().chain(&self.duplicate) {
            if !(0.0..=1.0).contains(&w.p) {
                return Err(format!("rate {} outside [0, 1]", w.p));
            }
            if w.end < w.start {
                return Err(format!("inverted window {}..{}", w.start, w.end));
            }
        }
        for p in &self.partitions {
            if p.end < p.start {
                return Err(format!("inverted partition {}..{}", p.start, p.end));
            }
        }
        for c in &self.crashes {
            if c.down_for == 0 {
                return Err("crash with zero downtime".to_string());
            }
        }
        for p in &self.perturbations {
            if p.k == 0 {
                return Err("perturbation of zero nodes".to_string());
            }
        }
        Ok(())
    }
}

/// One message destroyed by the injector — the watchdog's evidence
/// trail for root-cause analysis. Crash channel loss is logged with the
/// crashed node as both endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DropRecord {
    /// The round the drop happened in.
    pub round: u64,
    /// The sending node.
    pub src: NodeId,
    /// The intended destination.
    pub dest: NodeId,
    /// The destroyed message.
    pub msg: Message,
}

/// The per-send decision the injector hands the round loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Deliver normally.
    Deliver,
    /// Destroy the message (already logged and to be counted as
    /// `dropped_fault`).
    Drop,
    /// Enqueue an extra copy alongside the original.
    Duplicate,
}

/// Live fault-injection state owned by a faulted network: the plan, the
/// injector's private RNG, the set of currently-down nodes and the
/// recent drop log.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Crashed nodes → the round they restart at.
    down: BTreeMap<NodeId, u64>,
    drop_log: Vec<DropRecord>,
}

impl FaultInjector {
    /// Builds an injector for a validated plan.
    ///
    /// # Panics
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            down: BTreeMap::new(),
            drop_log: Vec::new(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True while `id` is crashed (skipped by the round loop; messages
    /// to it are destroyed).
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down.contains_key(&id)
    }

    /// Number of currently-down nodes.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// The retained log of injector-destroyed messages, oldest first
    /// (bounded — old entries are evicted, recent ones always kept).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drop_log
    }

    /// Records a destroyed message in the bounded log.
    pub(crate) fn note_drop(&mut self, round: u64, src: NodeId, dest: NodeId, msg: Message) {
        if self.drop_log.len() >= DROP_LOG_CAP {
            self.drop_log.drain(..DROP_LOG_CAP / 2);
        }
        self.drop_log.push(DropRecord {
            round,
            src,
            dest,
            msg,
        });
    }

    /// Marks `node` down until `restart_round`.
    pub(crate) fn mark_down(&mut self, node: NodeId, restart_round: u64) {
        self.down.insert(node, restart_round);
    }

    /// Removes and returns the nodes whose downtime ends at or before
    /// `round`.
    pub(crate) fn take_restarts(&mut self, round: u64) -> Vec<NodeId> {
        let due: Vec<NodeId> = self
            .down
            .iter()
            .filter(|&(_, &until)| until <= round)
            .map(|(&id, _)| id)
            .collect();
        for id in &due {
            self.down.remove(id);
        }
        due
    }

    /// The crashes scheduled for `round`.
    pub(crate) fn crashes_at(&self, round: u64) -> Vec<Crash> {
        self.plan
            .crashes
            .iter()
            .filter(|c| c.round == round)
            .copied()
            .collect()
    }

    /// Timeline markers for windows opening at `round` (drop and
    /// duplication rates, partitions) — rendered as `Fault` events so
    /// reports show when loss regimes begin.
    pub(crate) fn windows_opening_at(&self, round: u64) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for w in &self.plan.drop {
            if w.start == round && w.p > 0.0 {
                out.push((
                    "drop_window",
                    format!("p={} over rounds {}..{}", w.p, w.start, w.end),
                ));
            }
        }
        for w in &self.plan.duplicate {
            if w.start == round && w.p > 0.0 {
                out.push((
                    "dup_window",
                    format!("p={} over rounds {}..{}", w.p, w.start, w.end),
                ));
            }
        }
        for p in &self.plan.partitions {
            if p.start == round {
                out.push((
                    "partition",
                    format!("cut at {:?} over rounds {}..{}", p.cut, p.start, p.end),
                ));
            }
        }
        out
    }

    /// The perturbations scheduled for `round`.
    pub(crate) fn perturbations_at(&self, round: u64) -> Vec<Perturbation> {
        self.plan
            .perturbations
            .iter()
            .filter(|p| p.round == round)
            .copied()
            .collect()
    }

    /// Draws `k` distinct victims from `pool` (injector RNG).
    pub(crate) fn pick_distinct(&mut self, k: usize, pool: &[NodeId]) -> Vec<NodeId> {
        let mut v = pool.to_vec();
        v.shuffle(&mut self.rng);
        v.truncate(k.min(v.len()));
        v
    }

    /// Draws one uniform element of `pool` (injector RNG).
    ///
    /// # Panics
    /// Panics on an empty pool.
    pub(crate) fn pick_one(&mut self, pool: &[NodeId]) -> NodeId {
        pool[self.rng.random_range(0..pool.len())]
    }

    /// Decides the fate of one send. Fixed decision order (down
    /// destination, partition, loss rate, duplication rate); injector
    /// RNG is consumed **only** when a rate window is active, so rounds
    /// outside every window replay the fault-free computation exactly.
    pub(crate) fn fate(&mut self, round: u64, src: NodeId, dest: NodeId, msg: Message) -> Fate {
        if self.is_down(dest) || self.is_down(src) {
            self.note_drop(round, src, dest, msg);
            return Fate::Drop;
        }
        if self
            .plan
            .partitions
            .iter()
            .any(|p| p.active(round) && p.cuts(src, dest))
        {
            self.note_drop(round, src, dest, msg);
            return Fate::Drop;
        }
        let drop_p = self.plan.drop.iter().find(|w| w.active(round)).map(|w| w.p);
        if let Some(p) = drop_p {
            if self.rng.random_bool(p) {
                self.note_drop(round, src, dest, msg);
                return Fate::Drop;
            }
        }
        let dup_p = self
            .plan
            .duplicate
            .iter()
            .find(|w| w.active(round))
            .map(|w| w.p);
        if let Some(p) = dup_p {
            if self.rng.random_bool(p) {
                return Fate::Duplicate;
            }
        }
        Fate::Deliver
    }
}

/// The watchdog's final classification of a recovery watch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The sorted ring held again after `rounds` rounds (counted from
    /// the watch start).
    Recovered {
        /// Rounds from the watch start to re-stabilization.
        rounds: u64,
    },
    /// The union knowledge graph (CC view) fell apart: some identifier
    /// is unreachable from the rest and no protocol rule can ever
    /// reintroduce it. `culprit` is the most recent logged drop whose
    /// payload ended up in a different component than its sender — the
    /// sole-carrier drop that severed the network — when one is
    /// identifiable.
    PermanentlyDisconnected {
        /// The absolute round disconnection was detected at.
        round: u64,
        /// The responsible drop, if identifiable from the log.
        culprit: Option<DropRecord>,
    },
    /// The round budget ran out with the knowledge graph still
    /// connected — slow convergence, not impossibility.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl Verdict {
    /// Stable label for reports: `"recovered"`, `"disconnected"` or
    /// `"budget_exhausted"`.
    pub fn outcome(&self) -> &'static str {
        match self {
            Verdict::Recovered { .. } => "recovered",
            Verdict::PermanentlyDisconnected { .. } => "disconnected",
            Verdict::BudgetExhausted { .. } => "budget_exhausted",
        }
    }

    /// Rounds to recovery, when recovered.
    pub fn recovered_rounds(&self) -> Option<u64> {
        match self {
            Verdict::Recovered { rounds } => Some(*rounds),
            _ => None,
        }
    }
}

/// Outcome of a [`watch_recovery`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WatchReport {
    /// The watchdog's classification.
    pub verdict: Verdict,
    /// Messages sent during the watch (overhead accounting).
    pub messages: u64,
    /// Messages the injector destroyed during the watch.
    pub dropped_fault: u64,
    /// The round budget the watch ran under.
    pub budget: u64,
    /// Shape of the repair cascade observed during the watch: depth
    /// histogram, width profile and per-kind fan-out of the causal DAG.
    /// Present only when a sink was attached — causal ids exist only on
    /// the instrumented path.
    pub cascade: Option<CascadeReport>,
}

/// Runs the network for up to `budget` rounds from the fault instant
/// (the call time), classifying the outcome:
///
/// * **recovered** — `is_sorted_ring_view` holds again (checked only on
///   rounds whose `links_changed` flag is set, like `run_until`);
/// * **permanently disconnected** — the CC view (node states ∪
///   in-flight payloads) is no longer weakly connected. Checked on
///   rounds with injector drops (channel loss from a crash counts);
///   once disconnected, the knowledge closure argument makes recovery
///   impossible, so the watch stops immediately and names the culprit
///   drop when one is identifiable;
/// * **budget exhausted** — neither of the above within `budget`.
///
/// Emits a `"recovery"` [`Event::Span`] plus an [`Event::Verdict`] to
/// the attached sink, if any.
pub fn watch_recovery(net: &mut Network, budget: u64) -> WatchReport {
    let start = net.round();
    // Bracket the watch in a cascade window so the repair's causal DAG
    // is accounted separately from whatever ran before (no-op without a
    // sink).
    net.cascade_begin();
    let mut report = WatchReport {
        verdict: Verdict::BudgetExhausted { budget },
        messages: 0,
        dropped_fault: 0,
        budget,
        cascade: None,
    };
    let mut sorted = is_sorted_ring_view(&net.view());
    if sorted {
        report.verdict = Verdict::Recovered { rounds: 0 };
    } else {
        for k in 1..=budget {
            let stats = net.step();
            report.messages += stats.total_sent();
            report.dropped_fault += stats.dropped_fault;
            if stats.links_changed {
                sorted = is_sorted_ring_view(&net.view());
            }
            if sorted {
                report.verdict = Verdict::Recovered { rounds: k };
                break;
            }
            if stats.dropped_fault > 0 && !weakly_connected_view(&net.view(), View::Cc) {
                report.verdict = Verdict::PermanentlyDisconnected {
                    round: net.round(),
                    culprit: find_culprit(net),
                };
                break;
            }
        }
    }
    let end = net.round();
    report.cascade = net.cascade_take();
    net.emit(Event::Span {
        label: "recovery".to_string(),
        start,
        end,
    });
    if let Some(c) = report.cascade.as_ref() {
        let ev = Event::Cascade {
            label: "recovery".to_string(),
            start: c.start,
            end: c.end,
            delivered: c.delivered(),
            roots: c.stats.roots,
            edges: c.stats.edges,
            depth: c.stats.depth.clone(),
            width_max: c.stats.width_max(),
            handled_by_kind: c.stats.handled_by_kind.clone(),
            children_by_kind: c.stats.children_by_kind.clone(),
        };
        net.emit(ev);
    }
    // The verdict goes last: an anomalous one trips the flight
    // recorder's auto-dump, and the dump should already contain the
    // span and cascade records above.
    net.emit(Event::Verdict {
        round: end,
        outcome: report.verdict.outcome().to_string(),
        detail: verdict_detail(&report.verdict),
    });
    report
}

/// Scans the injector's drop log (most recent first) for a destroyed
/// message whose payload now sits in a different weak component of the
/// CC view than its sender — the signature of a sole-carrier drop.
fn find_culprit(net: &Network) -> Option<DropRecord> {
    let inj = net.fault_injector()?;
    let v = net.view();
    let labels = component_labels_view(&v, View::Cc);
    for rec in inj.drops().iter().rev() {
        let Some(src_rank) = v.index_of(rec.src) else {
            continue;
        };
        for x in rec.msg.carried_ids() {
            if let Some(x_rank) = v.index_of(x) {
                if labels[x_rank] != labels[src_rank] {
                    return Some(*rec);
                }
            }
        }
    }
    None
}

fn verdict_detail(v: &Verdict) -> String {
    match v {
        Verdict::Recovered { rounds } => format!("rounds={rounds}"),
        Verdict::PermanentlyDisconnected {
            round,
            culprit: Some(c),
        } => format!(
            "at round {round}: dropped {:?} from {:?} to {:?} in round {} was a sole carrier",
            c.msg, c.src, c.dest, c.round
        ),
        Verdict::PermanentlyDisconnected {
            round,
            culprit: None,
        } => {
            format!("at round {round}: culprit not identifiable from the drop log")
        }
        Verdict::BudgetExhausted { budget } => format!("budget={budget}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::{evenly_spaced_ids, Extended};
    use swn_core::invariants::make_sorted_ring;
    use swn_core::node::Node;

    fn fid(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    /// a—b form a sorted 2-list; c is blank (knows nobody, nobody knows
    /// it) except for the preloaded `Lin(c)` hints.
    fn three_node_net(hint_to_b: bool) -> (Network, NodeId, NodeId, NodeId) {
        let cfg = ProtocolConfig::default();
        let (a, b, c) = (fid(0.2), fid(0.5), fid(0.8));
        let na = Node::with_state(a, Extended::NegInf, Extended::Fin(b), a, None, cfg);
        let nb = Node::with_state(b, Extended::Fin(a), Extended::PosInf, b, None, cfg);
        let nc = Node::new(c, cfg);
        let mut net = Network::new(vec![na, nb, nc], 3);
        net.preload(a, Message::Lin(c));
        if hint_to_b {
            net.preload(b, Message::Lin(c));
        }
        (net, a, b, c)
    }

    #[test]
    fn sole_carrier_drop_is_reported_with_its_culprit_edge() {
        // Only a knows c, as an in-flight Lin(c). a's handler forwards
        // it toward b without storing (c > a.r = b), and the round-1
        // loss window destroys the forward — the sole carrier. The
        // watchdog must classify this as permanent disconnection and
        // name the a→b Lin(c) drop.
        let (mut net, a, b, c) = three_node_net(false);
        net.attach_faults(FaultPlan::new(7).with_drop(1, 2, 1.0));
        let report = watch_recovery(&mut net, 100);
        match &report.verdict {
            Verdict::PermanentlyDisconnected { culprit, .. } => {
                let rec = culprit.expect("culprit identifiable");
                assert_eq!(rec.msg, Message::Lin(c));
                assert_eq!(rec.src, a);
                assert_eq!(rec.dest, b);
                assert_eq!(rec.round, 1);
            }
            other => panic!("expected permanent disconnection, got {other:?}"),
        }
        assert!(report.dropped_fault > 0);
        assert_eq!(report.verdict.outcome(), "disconnected");
    }

    #[test]
    fn duplicate_carrier_survives_the_same_drop() {
        // Same scenario, but b also holds a Lin(c) hint: b adopts c as
        // its right neighbour on delivery (before any send can be
        // dropped), so the knowledge graph stays connected through the
        // loss window and the ring closes over all three nodes.
        let (mut net, _a, _b, c) = three_node_net(true);
        net.attach_faults(FaultPlan::new(7).with_drop(1, 2, 1.0));
        let report = watch_recovery(&mut net, 500);
        assert!(
            matches!(report.verdict, Verdict::Recovered { rounds } if rounds > 0),
            "expected recovery, got {:?}",
            report.verdict
        );
        assert!(net.node(c).is_some());
    }

    #[test]
    fn same_plan_and_seeds_replay_bit_for_bit() {
        let run = || {
            let ids = evenly_spaced_ids(12);
            let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 5);
            net.attach_faults(
                FaultPlan::new(11)
                    .with_drop(3, 20, 0.3)
                    .with_duplicate(5, 15, 0.2)
                    .with_crash(8, ids[4], 4)
                    .with_perturbation(2, 3),
            );
            net.run(30);
            (
                format!("{:?}", net.snapshot().as_view().edges(View::Cc)),
                net.trace().rounds().to_vec(),
                net.fault_injector().expect("attached").drops().to_vec(),
            )
        };
        let (e1, t1, d1) = run();
        let (e2, t2, d2) = run();
        assert_eq!(e1, e2);
        assert_eq!(t1, t2);
        assert_eq!(d1, d2);
        assert!(!d1.is_empty(), "the loss window must have destroyed mail");
    }

    #[test]
    fn different_fault_seeds_diverge() {
        let run = |fault_seed: u64| {
            let ids = evenly_spaced_ids(12);
            let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 5);
            net.attach_faults(FaultPlan::new(fault_seed).with_drop(1, 30, 0.4));
            net.run(30);
            net.fault_injector().expect("attached").drops().to_vec()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn crash_and_restart_recovers_on_a_stable_ring() {
        let ids = evenly_spaced_ids(10);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 9);
        net.run(10);
        net.attach_faults(FaultPlan::new(1).with_crash(net.round() + 1, ids[4], 3));
        net.step(); // crash lands
        let inj = net.fault_injector().expect("attached");
        assert!(inj.is_down(ids[4]));
        assert_eq!(inj.down_count(), 1);
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "crash+restart must heal: {:?}",
            report.verdict
        );
        assert!(!net.fault_injector().expect("attached").is_down(ids[4]));
    }

    #[test]
    fn perturbation_is_recoverable_damage() {
        let ids = evenly_spaced_ids(16);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 4);
        net.run(10);
        net.attach_faults(FaultPlan::new(2).with_perturbation(net.round() + 1, 5));
        net.step(); // perturbation lands
        assert!(
            !is_sorted_ring_view(&net.view()),
            "5 corrupted nodes must break the ring"
        );
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "l-preserving perturbation is recoverable: {:?}",
            report.verdict
        );
    }

    #[test]
    fn partition_heals_after_the_window() {
        let ids = evenly_spaced_ids(12);
        let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 6);
        net.run(5);
        let cut = ids[5];
        let now = net.round();
        net.attach_faults(FaultPlan::new(3).with_partition(now + 1, now + 11, cut));
        net.run(10);
        assert!(
            net.trace().total_dropped_fault() > 0,
            "cross-cut traffic must be destroyed while partitioned"
        );
        let report = watch_recovery(&mut net, 5000);
        assert!(
            matches!(report.verdict, Verdict::Recovered { .. }),
            "stored pointers survive a partition: {:?}",
            report.verdict
        );
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        assert!(FaultPlan::new(0).validate().is_ok());
        assert!(FaultPlan::new(0).with_drop(0, 5, 1.5).validate().is_err());
        assert!(FaultPlan::new(0).with_drop(5, 2, 0.5).validate().is_err());
        assert!(FaultPlan::new(0)
            .with_partition(9, 3, fid(0.5))
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_crash(1, fid(0.5), 0)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_perturbation(1, 0)
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let _ = FaultInjector::new(FaultPlan::new(0).with_drop(0, 5, -0.1));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .with_drop(1, 10, 0.25)
            .with_duplicate(2, 8, 0.5)
            .with_partition(3, 6, fid(0.4))
            .with_crash(4, fid(0.6), 2)
            .with_perturbation(5, 7);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(1).is_empty());
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn rate_window_is_inactive_at_zero_probability() {
        let w = RateWindow {
            start: 0,
            end: 100,
            p: 0.0,
        };
        assert!(!w.active(50), "p = 0 must behave as no window at all");
    }
}
