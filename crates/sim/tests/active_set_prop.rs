//! Property test: the active-set scheduler agrees with the full-scan
//! oracle — random churn/fault schedules stepped under
//! [`ScheduleMode::ActiveSet`] and under the every-node loop converge to
//! identical structure fingerprints.
//!
//! The two engines are *semantically*, not bit-for-bit, equivalent: the
//! active set changes which nodes act each round (hence the RNG
//! schedule), and settled nodes pause their lrl walk, ages and probe
//! ticks — the documented schedule deviation of `crate::sched`. What
//! must agree is everything the protocol's self-stabilization theorem
//! pins down: both engines reach the sorted ring over the surviving id
//! set, whose list pointers are unique and whose extreme ring edges are
//! mutually paired. The comparison digest covers exactly that (the
//! `flush_equivalence_semantic_under_churn` precedent in `network.rs`).
//!
//! Fault plans are restricted to crashes and perturbations: those are
//! round-start faults whose injector RNG draws depend only on the live
//! id set, identical in both engines. Drop/duplication windows draw per
//! *send*, and the engines send different message sequences, so their
//! injector streams would diverge by construction — they are exercised
//! by the fault-matrix suite instead.

use proptest::collection::vec;
use proptest::prelude::*;
use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_sim::convergence::run_to_ring;
use swn_sim::faults::FaultPlan;
use swn_sim::init::{generate, InitialTopology};
use swn_sim::{Network, ScheduleMode};

/// FNV-1a digest of the converged structure: every node's `(id, l, r)`
/// in ascending order plus the extremes' ring edges.
fn structure_digest(net: &Network) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let enc = |e: swn_core::id::Extended| -> u64 {
        match e {
            swn_core::id::Extended::NegInf => u64::MAX - 1,
            swn_core::id::Extended::PosInf => u64::MAX,
            swn_core::id::Extended::Fin(x) => x.bits(),
        }
    };
    let v = net.view();
    let nodes = v.nodes();
    for n in nodes {
        mix(n.id().bits());
        mix(enc(n.left()));
        mix(enc(n.right()));
    }
    for seam in [nodes.first(), nodes.last()].into_iter().flatten() {
        mix(seam.ring().map_or(0, NodeId::bits));
    }
    h
}

/// One scripted churn event, applied at a fixed round of the lockstep
/// window so both engines see the same membership history.
#[derive(Clone, Copy, Debug)]
enum ChurnOp {
    /// Insert `from_bits(id_bits)` with the current maximum as contact.
    Join { round: u64, id_bits: u64 },
    /// Remove the live node of the given rank (mod live count).
    Leave { round: u64, rank: usize },
}

fn decode(round_mod: u64, code: (u8, u64)) -> ChurnOp {
    let round = 1 + code.1 % round_mod;
    match code.0 {
        0 => ChurnOp::Join {
            round,
            // Odd bits never collide with `evenly_spaced_ids` (whose
            // step is even for every n < 2^63) nor with each other when
            // derived from distinct codes.
            id_bits: code.1 | 1,
        },
        _ => ChurnOp::Leave {
            round,
            rank: usize::try_from(code.1 % 97).expect("small"),
        },
    }
}

fn apply_ops(net: &mut Network, ops: &[ChurnOp], round: u64) {
    for op in ops {
        match *op {
            ChurnOp::Join { round: r, id_bits } if r == round => {
                let joiner = NodeId::from_bits(id_bits);
                if net.insert_node(Node::new(joiner, ProtocolConfig::default())) {
                    let contact = net
                        .ids()
                        .into_iter()
                        .rfind(|&c| c != joiner)
                        .expect("another node is live");
                    net.send_external(contact, Message::Lin(joiner));
                }
            }
            ChurnOp::Leave { round: r, rank } if r == round => {
                let ids = net.ids();
                if ids.len() > 2 {
                    net.remove_node(ids[rank % ids.len()]);
                }
            }
            _ => {}
        }
    }
}

const LOCKSTEP: u64 = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn active_set_agrees_with_full_scan_oracle(
        n in 6usize..14,
        seed in 0u64..500,
        codes in vec((0u8..2, 0u64..10_000), 0..5),
        crash in proptest::option::of((1u64..8, 0usize..6, 1u64..6)),
        perturb in proptest::option::of((1u64..8, 1usize..3)),
    ) {
        let ids = evenly_spaced_ids(n);
        let ops: Vec<ChurnOp> = codes
            .iter()
            .map(|&c| decode(LOCKSTEP - 4, c))
            .collect();
        // Crash downtime ends inside the lockstep window so the engines
        // share the whole down/restart history before they part ways.
        let plan = |seed: u64| {
            let mut plan = FaultPlan::new(seed ^ 0x5eed);
            if let Some((round, rank, down_for)) = crash {
                plan = plan.with_crash(round, ids[rank % ids.len()], down_for);
            }
            if let Some((round, k)) = perturb {
                plan = plan.with_perturbation(round, k);
            }
            plan
        };
        // Start from the sorted ring: on it every leave keeps the
        // knowledge graph weakly connected with overwhelming probability
        // (both former neighbours hold pointers across the gap), so the
        // schedules below are almost always recoverable. Starting from a
        // random sparse graph instead partitions the graph often enough
        // to drown the test in unrecoverable (hence vacuous) cases.
        let fresh = || {
            Network::new(
                swn_core::invariants::make_sorted_ring(&ids, ProtocolConfig::default()),
                seed,
            )
        };
        let mut full = fresh();
        let mut active = fresh();
        active.set_schedule_mode(ScheduleMode::ActiveSet);
        full.attach_faults(plan(seed));
        active.attach_faults(plan(seed));
        // Lockstep window: both engines live through the same churn and
        // fault schedule round for round.
        for round in 1..=LOCKSTEP {
            apply_ops(&mut full, &ops, round - 1);
            apply_ops(&mut active, &ops, round - 1);
            full.step();
            active.step();
            prop_assert_eq!(full.ids(), active.ids(), "membership diverged");
        }
        // Free run: each engine converges at its own pace. A schedule
        // that partitioned the knowledge graph (possible when leaves and
        // crashes conspire) is unrecoverable for *any* engine; when the
        // full-scan oracle cannot stabilize, the case is vacuous.
        let rep_full = run_to_ring(&mut full, 20_000);
        if !rep_full.stabilized() {
            return Ok(());
        }
        let rep_active = run_to_ring(&mut active, 20_000);
        prop_assert!(rep_active.stabilized(), "active-set engine failed: {rep_active:?}");
        prop_assert_eq!(full.ids(), active.ids());
        prop_assert_eq!(
            structure_digest(&full),
            structure_digest(&active),
            "converged structures diverged"
        );
    }

    /// Fault-free half of the oracle: from adversarial initial
    /// topologies (no churn, so no partition risk) both engines must
    /// stabilize to the same structure.
    #[test]
    fn active_set_converges_like_full_scan_from_adversarial_states(
        n in 6usize..16,
        seed in 0u64..500,
        pick in 0u8..3,
    ) {
        let ids = evenly_spaced_ids(n);
        let topo = match pick {
            0 => InitialTopology::RandomSparse { extra: 2 },
            1 => InitialTopology::Star,
            _ => InitialTopology::Clique,
        };
        let fresh = || generate(topo, &ids, ProtocolConfig::default(), seed).into_network(seed);
        let mut full = fresh();
        let mut active = fresh();
        active.set_schedule_mode(ScheduleMode::ActiveSet);
        let rep_full = run_to_ring(&mut full, 20_000);
        let rep_active = run_to_ring(&mut active, 20_000);
        prop_assert!(rep_full.stabilized(), "full-scan engine failed: {rep_full:?}");
        prop_assert!(rep_active.stabilized(), "active-set engine failed: {rep_active:?}");
        prop_assert_eq!(structure_digest(&full), structure_digest(&active));
    }
}
