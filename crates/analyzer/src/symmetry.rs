//! Canonical state keys: id-rank renaming plus age saturation.
//!
//! Two abstractions compose into one canonical [`Key`]:
//!
//! * **Rank renaming.** The protocol is order-based: every handler
//!   decision compares identifiers, never inspects their magnitude. The
//!   canonical key therefore encodes each identifier as its *rank* in
//!   the sorted id set and walks nodes (and channels) in rank order. Two
//!   configurations that differ only in the storage order of the node
//!   vector, or in the concrete id values assigned to the same order
//!   type, get the same key — this is the symmetry reduction, and it is
//!   what lets one search certify every network that is order-isomorphic
//!   to the seeded one. The raw [`State::key`] already encodes ids as
//!   node-vector indices; rank renaming additionally makes the key
//!   independent of how the initializer happened to arrange that vector.
//!
//! * **Age saturation.** `age` enters behaviour only through the forget
//!   probability `φ(age)` inside `move-forget`: `φ = 0` for `age ≤ 2`,
//!   and for `age ≥ 3` the two exploration policies are constant —
//!   [`Policy::Zeros`](crate::stepper::Policy) (draw `0.0`) forgets
//!   whenever `φ > 0`, [`Policy::Ones`](crate::stepper::Policy) (draw
//!   `1 − 2⁻⁵³`) never forgets since `max φ = φ(3) ≈ 0.57 < 1 − 2⁻⁵³`.
//!   Ages `0`, `1` and `2` must stay distinct (they count down to the
//!   threshold: a successor of `age = 2` is forgettable, a successor of
//!   `age = 1` is not), but all ages `≥ 3` are bisimilar under either
//!   policy, so the key stores `min(age, 3)`. Within the budgeted scope
//!   this is a plain reduction — states whose ages differ only past the
//!   threshold collapse into one — and it is what would keep `age` from
//!   blowing up the key space in deeper scopes. The
//!   `ones_policy_draw_exceeds_every_phi` test pins the policy argument
//!   to the implemented `φ`.

use crate::state::{Key, State};

/// Ages at or above this value are bisimilar under both exploration
/// policies (see the module docs); the canonical key stores
/// `min(age, AGE_SATURATION)`.
pub const AGE_SATURATION: u64 = 3;

/// Node indices in ascending id order: `order[rank] = index`.
fn rank_order(s: &State) -> Vec<usize> {
    let mut order: Vec<usize> = (0..s.nodes.len()).collect();
    order.sort_by(|&a, &b| {
        s.nodes[a]
            .id()
            .partial_cmp(&s.nodes[b].id())
            .expect("node ids are totally ordered")
    });
    order
}

/// Canonical key of `s`: nodes and channels walked in id-rank order,
/// identifiers encoded as ranks, ages saturated at [`AGE_SATURATION`],
/// probing ticks reduced to their `probe_period` residue. Budgets are
/// included (in rank order) when `include_budgets` is set; a caller that
/// abstracts budgets away may drop them from the key.
///
/// Equal canonical keys are bisimilar modulo an order-isomorphism of the
/// identifier space, which every handler decision factors through.
pub fn canonical_key(s: &State, include_budgets: bool) -> Key {
    use swn_core::id::Extended;
    use swn_core::message::Message;

    let order = rank_order(s);
    let mut rank_of_index = vec![0u64; order.len()];
    for (rank, &idx) in order.iter().enumerate() {
        rank_of_index[idx] = rank as u64;
    }
    let code_id = |id: swn_core::id::NodeId| -> u64 {
        let idx = s.index_of(id).expect("identifier in the closed world");
        rank_of_index[idx] + 2
    };
    let code_ext = |e: Extended| -> u64 {
        match e {
            Extended::NegInf => 0,
            Extended::PosInf => 1,
            Extended::Fin(id) => code_id(id),
        }
    };
    let code_msg = |m: &Message| -> [u64; 3] {
        match *m {
            Message::Lin(x) => [0, code_id(x), 0],
            Message::IncLrl(x) => [1, code_id(x), 0],
            Message::ResLrl(a, b) => [2, code_ext(a), code_ext(b)],
            Message::Ring(x) => [3, code_id(x), 0],
            Message::ResRing(x) => [4, code_id(x), 0],
            Message::ProbR(x) => [5, code_id(x), 0],
            Message::ProbL(x) => [6, code_id(x), 0],
        }
    };

    let mut k = Vec::with_capacity(6 * s.nodes.len() + 4 * s.channels.len());
    for &idx in &order {
        let node = &s.nodes[idx];
        k.push(code_ext(node.left()));
        k.push(code_ext(node.right()));
        k.push(code_id(node.lrl()));
        k.push(node.ring().map_or(0, code_id));
        k.push(node.age().min(AGE_SATURATION));
        k.push(node.probe_tick() % node.config().probe_period);
    }
    if include_budgets {
        for &idx in &order {
            k.push(u64::from(s.budgets[idx]));
        }
    }
    for &idx in &order {
        let mut codes: Vec<[u64; 3]> = s.channels[idx].iter().map(code_msg).collect();
        codes.sort_unstable();
        k.push(codes.len() as u64);
        for c in codes {
            k.extend(c);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use swn_core::config::ProtocolConfig;
    use swn_core::forget::phi;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::message::Message;
    use swn_core::node::Node;

    #[test]
    fn ones_policy_draw_exceeds_every_phi() {
        // The age-saturation argument needs the Ones draw (largest f64
        // below 1) to dominate φ(age) for every age ≥ 3.
        let ones_draw = (u64::MAX >> 11) as f64 / (1u64 << 53) as f64;
        assert!(ones_draw < 1.0);
        for age in 3..2000u64 {
            assert!(
                phi(age, 0.1) < ones_draw,
                "φ({age}) = {} reaches the Ones draw",
                phi(age, 0.1)
            );
        }
        for age in 0..3u64 {
            assert_eq!(phi(age, 0.1), 0.0, "φ must vanish below age 3");
        }
    }

    #[test]
    fn canonical_key_is_storage_order_invariant() {
        let ids = evenly_spaced_ids(3);
        let cfg = ProtocolConfig::default();
        let nodes: Vec<Node> = ids.iter().map(|&id| Node::new(id, cfg)).collect();
        let mut shuffled = nodes.clone();
        shuffled.rotate_left(1);
        let a = State::initial(nodes, &[(ids[0], Message::Lin(ids[1]))], 1);
        let b = State::initial(shuffled, &[(ids[0], Message::Lin(ids[1]))], 1);
        assert_ne!(a.key(), b.key(), "raw keys see the storage order");
        assert_eq!(canonical_key(&a, true), canonical_key(&b, true));
    }

    #[test]
    fn canonical_key_saturates_age() {
        let ids = evenly_spaced_ids(2);
        let cfg = ProtocolConfig::default();
        let at_age = |age: u64| -> State {
            let nodes = ids
                .iter()
                .map(|&id| {
                    let mut n = Node::new(id, cfg);
                    for _ in 0..age {
                        let mut out = swn_core::outbox::Outbox::new();
                        n.on_regular(&mut out);
                    }
                    n
                })
                .collect();
            State::initial(nodes, &[], 0)
        };
        assert_ne!(
            canonical_key(&at_age(1), false),
            canonical_key(&at_age(2), false),
            "ages below the threshold stay distinct"
        );
        assert_eq!(
            canonical_key(&at_age(3), false),
            canonical_key(&at_age(4), false),
            "ages at and past the threshold merge"
        );
    }
}
