//! Causal repair tracing: who triggered whom.
//!
//! The paper's convergence argument is about *chains* of linearization
//! steps — a corrupted edge heals because a `Lin` triggered a `Lin`
//! that triggered a repair. The flat per-round counters of the obs
//! layer cannot see those chains, so this module gives every delivered
//! message an identity ([`CauseId`]) and every enqueued message a
//! provenance tag ([`CauseTag`]): receive-action emissions inherit the
//! id of the message whose handler produced them, regular-action and
//! external sends are cascade *roots*. The result is a repair-cascade
//! DAG whose shape (depth, width, per-kind fan-out) the fault watchdog
//! reports per recovery span as a [`CascadeReport`].
//!
//! **Acyclicity is by construction.** A child is enqueued while its
//! parent's delivery round is executing, and becomes eligible strictly
//! later (receipt strictly follows transmission), so every edge
//! satisfies `parent.round < child.round` — and `seq` is globally
//! monotone over deliveries, so `parent.seq < child.seq` too. The
//! `causal_prop` suite pins both orderings over random fault scenarios.
//!
//! Tagging lives entirely inside the `OBS = true` monomorphization of
//! the round loop: the detached path never touches the `causes` lane
//! (see [`crate::channel::Channel::push_caused`]) and stays
//! byte-identical, and tagging itself consumes no RNG.

use serde::{Deserialize, Serialize};
use swn_core::message::MessageKind;

use super::Histogram;

/// Identity of one *delivered* message: the round and node slot it was
/// handled at, plus a globally monotone sequence number (unique per
/// attached observer, strictly increasing in delivery order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CauseId {
    /// Round the message was delivered (handled) in.
    pub round: u64,
    /// Slot index of the receiving node.
    pub slot: u32,
    /// Global delivery sequence number.
    pub seq: u64,
}

impl CauseId {
    /// Sentinel for "no cause": regular-action sends, preloads, and any
    /// message enqueued while no observer was attached.
    pub const EXTERNAL: CauseId = CauseId {
        round: u64::MAX,
        slot: u32::MAX,
        seq: u64::MAX,
    };
}

/// Provenance of one *enqueued* message: the delivered message whose
/// handler emitted it (or [`CauseId::EXTERNAL`]) and the cascade depth
/// it sits at — 0 for roots, parent depth + 1 otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CauseTag {
    /// The delivered message this one was emitted in response to.
    pub parent: CauseId,
    /// Chain length from the nearest root (0 = root).
    pub depth: u32,
}

impl CauseTag {
    /// The root tag: no parent, depth 0.
    pub const ROOT: CauseTag = CauseTag {
        parent: CauseId::EXTERNAL,
        depth: 0,
    };

    /// True when this message started a cascade (regular action,
    /// preload, or untracked provenance).
    pub fn is_root(&self) -> bool {
        self.parent == CauseId::EXTERNAL
    }
}

/// Cascade width is tracked per depth level up to this many levels;
/// deeper deliveries lump into the last slot. Real repair cascades are
/// far shallower (a chain crosses the whole ring in O(n) rounds), so
/// the cap only bounds memory, not fidelity.
pub const WIDTH_LEVELS: usize = 64;

/// Parent→child edges are logged verbatim up to this many per cascade
/// window; beyond it only the aggregate counters grow (and
/// `edges_dropped` says how many edges the log is missing).
pub const EDGE_LOG_CAP: usize = 16_384;

/// Aggregate shape of the repair cascades observed in one window
/// (between `cascade_begin` and `cascade_take`, or over the whole run).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CascadeStats {
    /// Depth of every delivered message (0 = cascade root).
    pub depth: Histogram,
    /// Deliveries at depth 0: chains started.
    pub roots: u64,
    /// Deliveries at depth > 0: parent→child edges realized.
    pub edges: u64,
    /// Deliveries per depth level (`width[d]`), capped at
    /// [`WIDTH_LEVELS`] — the cascade's width profile.
    pub width: Vec<u64>,
    /// Deliveries by message kind (`MessageKind::index` order).
    pub handled_by_kind: Vec<u64>,
    /// Children emitted, indexed by the *parent's* kind: the per-kind
    /// fan-out numerator (divide by `handled_by_kind`).
    pub children_by_kind: Vec<u64>,
    /// Verbatim parent→child edges, capped at [`EDGE_LOG_CAP`].
    pub edge_log: Vec<(CauseId, CauseId)>,
    /// Edges beyond the log cap (aggregates above still count them).
    pub edges_dropped: u64,
}

impl CascadeStats {
    fn new() -> Self {
        CascadeStats {
            depth: Histogram::new(),
            roots: 0,
            edges: 0,
            width: vec![0; WIDTH_LEVELS],
            handled_by_kind: vec![0; MessageKind::COUNT],
            children_by_kind: vec![0; MessageKind::COUNT],
            edge_log: Vec::new(),
            edges_dropped: 0,
        }
    }

    fn record_delivery(&mut self, id: CauseId, tag: CauseTag, kind: MessageKind) {
        let d = u64::from(tag.depth);
        self.depth.record(d);
        self.width[(tag.depth as usize).min(WIDTH_LEVELS - 1)] += 1;
        self.handled_by_kind[kind.index()] += 1;
        if tag.is_root() {
            self.roots += 1;
        } else {
            self.edges += 1;
            if self.edge_log.len() < EDGE_LOG_CAP {
                self.edge_log.push((tag.parent, id));
            } else {
                self.edges_dropped += 1;
            }
        }
    }

    /// Widest depth level (deliveries at the most populated depth).
    pub fn width_max(&self) -> u64 {
        self.width.iter().copied().max().unwrap_or(0)
    }
}

/// A finished cascade window: everything [`CascadeStats`] counted, plus
/// the round bracket it covered. Attached to the fault watchdog's
/// `WatchReport` so E10 can relate cascade shape to MTTR.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CascadeReport {
    /// Round the window opened at.
    pub start: u64,
    /// Round the window closed at.
    pub end: u64,
    /// The aggregated cascade shape.
    pub stats: CascadeStats,
}

impl CascadeReport {
    /// Total deliveries observed in the window.
    pub fn delivered(&self) -> u64 {
        self.stats.depth.count()
    }

    /// Deepest chain observed (max delivered depth).
    pub fn depth_max(&self) -> u64 {
        self.stats.depth.max()
    }
}

/// Live causal-tracing state owned by an attached observer. Crate-
/// private: `Network`'s `OBS = true` round loop is the only driver.
///
/// Tracing is *window-gated*: the per-message work (id assignment,
/// boundary bookkeeping, the channels' `causes` lane) runs only while a
/// cascade window is open (`begin_window` … `take_window`). Outside a
/// window the instrumented loop takes the cheap tagged path — steady-
/// state runs pay for latency accounting only, which is what keeps the
/// instrumented/noop ratio inside the bench guard.
#[derive(Debug)]
pub(crate) struct CausalState {
    /// True while a cascade window is open — the round loop's gate for
    /// all per-message causal work.
    pub(crate) active: bool,
    /// Next delivery sequence number.
    seq: u64,
    /// Per handled message of the current action batch, in handling
    /// order: its fresh id, inherited depth, and kind.
    pub(crate) deliv: Vec<(CauseId, u32, MessageKind)>,
    /// `outbox.sends().len()` after each handled message: send `k`
    /// belongs to the first entry `j` with `k < bounds[j]` (the outbox
    /// is flushed once per batch, so attribution needs the cumulative
    /// boundaries).
    pub(crate) bounds: Vec<usize>,
    /// Stats for the current cascade window (reset by `begin_window`).
    pub(crate) window: CascadeStats,
    /// Round the current window opened at.
    pub(crate) window_start: u64,
    /// Whole-run depth histogram (never reset; feeds the Summary).
    pub(crate) run_depth: Histogram,
}

impl CausalState {
    pub(crate) fn new() -> Self {
        CausalState {
            active: false,
            seq: 0,
            deliv: Vec::new(),
            bounds: Vec::new(),
            window: CascadeStats::new(),
            window_start: 0,
            run_depth: Histogram::new(),
        }
    }

    /// Registers one delivered message: assigns its [`CauseId`] and
    /// feeds the window + run accounting. Call in handling order.
    pub(crate) fn on_delivery(&mut self, round: u64, slot: u32, tag: CauseTag, kind: MessageKind) {
        let id = CauseId {
            round,
            slot,
            seq: self.seq,
        };
        self.seq += 1;
        self.window.record_delivery(id, tag, kind);
        self.run_depth.record(u64::from(tag.depth));
        self.deliv.push((id, tag.depth, kind));
    }

    /// The tag for send index `k` of the current batch flush, walking
    /// the boundary `cursor` forward. Sends past the last boundary (or
    /// with no handled messages at all) are roots.
    pub(crate) fn tag_for_send(&mut self, k: usize, cursor: &mut usize) -> CauseTag {
        while *cursor < self.bounds.len() && k >= self.bounds[*cursor] {
            *cursor += 1;
        }
        match self.deliv.get(*cursor) {
            Some(&(id, depth, kind)) if *cursor < self.bounds.len() => {
                self.window.children_by_kind[kind.index()] += 1;
                CauseTag {
                    parent: id,
                    depth: depth + 1,
                }
            }
            _ => CauseTag::ROOT,
        }
    }

    /// Clears the per-batch attribution scratch (call once per flush).
    pub(crate) fn end_batch(&mut self) {
        self.deliv.clear();
        self.bounds.clear();
    }

    /// Opens a fresh cascade window at `round` and switches per-message
    /// tracing on. Messages already in flight were enqueued untagged and
    /// deliver as cascade roots.
    pub(crate) fn begin_window(&mut self, round: u64) {
        self.active = true;
        self.window = CascadeStats::new();
        self.window_start = round;
    }

    /// Closes the current window at `round`, returning its report and
    /// switching per-message tracing back off (until the next
    /// `begin_window`). Tags still in flight are invalidated by the
    /// next untraced channel take — a later window sees them as roots.
    pub(crate) fn take_window(&mut self, round: u64) -> CascadeReport {
        self.active = false;
        let stats = std::mem::replace(&mut self.window, CascadeStats::new());
        let start = self.window_start;
        self.window_start = round;
        CascadeReport {
            start,
            end: round,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind0() -> MessageKind {
        MessageKind::ALL[0]
    }

    #[test]
    fn root_tag_is_external_depth_zero() {
        assert!(CauseTag::ROOT.is_root());
        assert_eq!(CauseTag::ROOT.depth, 0);
        let child = CauseTag {
            parent: CauseId {
                round: 1,
                slot: 0,
                seq: 0,
            },
            depth: 1,
        };
        assert!(!child.is_root());
    }

    #[test]
    fn deliveries_get_monotone_seq_and_feed_the_window() {
        let mut st = CausalState::new();
        st.on_delivery(5, 0, CauseTag::ROOT, kind0());
        st.on_delivery(5, 1, CauseTag::ROOT, kind0());
        let parent = st.deliv[0].0;
        st.on_delivery(6, 2, CauseTag { parent, depth: 1 }, kind0());
        assert_eq!(st.deliv.len(), 3);
        assert!(st.deliv[0].0.seq < st.deliv[1].0.seq);
        assert!(st.deliv[1].0.seq < st.deliv[2].0.seq);
        assert_eq!(st.window.roots, 2);
        assert_eq!(st.window.edges, 1);
        assert_eq!(st.window.edge_log, vec![(parent, st.deliv[2].0)]);
        assert_eq!(st.window.width[0], 2);
        assert_eq!(st.window.width[1], 1);
        assert_eq!(st.window.handled_by_kind[kind0().index()], 3);
        assert_eq!(st.run_depth.count(), 3);
    }

    #[test]
    fn tag_for_send_walks_the_batch_boundaries() {
        let mut st = CausalState::new();
        st.on_delivery(9, 4, CauseTag::ROOT, kind0());
        st.on_delivery(9, 4, CauseTag::ROOT, kind0());
        // First handled message emitted 2 sends, second emitted 1.
        st.bounds.push(2);
        st.bounds.push(3);
        let (id_a, _, _) = st.deliv[0];
        let (id_b, _, _) = st.deliv[1];
        let mut cursor = 0;
        assert_eq!(st.tag_for_send(0, &mut cursor).parent, id_a);
        assert_eq!(st.tag_for_send(1, &mut cursor).parent, id_a);
        let t = st.tag_for_send(2, &mut cursor);
        assert_eq!(t.parent, id_b);
        assert_eq!(t.depth, 1);
        // Past the last boundary: a regular-action send, a root.
        assert!(st.tag_for_send(3, &mut cursor).is_root());
        assert_eq!(st.window.children_by_kind[kind0().index()], 3);
        st.end_batch();
        assert!(st.deliv.is_empty() && st.bounds.is_empty());
    }

    #[test]
    fn windows_reset_but_run_accounting_persists() {
        let mut st = CausalState::new();
        st.begin_window(10);
        st.on_delivery(11, 0, CauseTag::ROOT, kind0());
        let rep = st.take_window(12);
        assert_eq!((rep.start, rep.end), (10, 12));
        assert_eq!(rep.delivered(), 1);
        assert_eq!(rep.stats.roots, 1);
        assert_eq!(rep.depth_max(), 0);
        assert_eq!(st.window.depth.count(), 0, "window reset");
        assert_eq!(st.run_depth.count(), 1, "run histogram kept");
        st.on_delivery(13, 0, CauseTag::ROOT, kind0());
        assert_eq!(st.deliv[1].0.seq, 1, "seq survives window turnover");
    }

    #[test]
    fn edge_log_caps_and_counts_overflow() {
        let mut st = CausalState::new();
        let parent = CauseId {
            round: 0,
            slot: 0,
            seq: 0,
        };
        for _ in 0..(EDGE_LOG_CAP + 10) {
            st.on_delivery(1, 0, CauseTag { parent, depth: 1 }, kind0());
        }
        assert_eq!(st.window.edge_log.len(), EDGE_LOG_CAP);
        assert_eq!(st.window.edges_dropped, 10);
        assert_eq!(st.window.edges, (EDGE_LOG_CAP + 10) as u64);
    }

    #[test]
    fn cascade_report_serde_round_trips() {
        let mut st = CausalState::new();
        st.on_delivery(2, 1, CauseTag::ROOT, kind0());
        let rep = st.take_window(3);
        let json = serde_json::to_string(&rep).expect("serialize");
        let back: CascadeReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rep);
    }
}
