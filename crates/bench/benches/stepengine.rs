//! Step-engine phase breakdown: where a simulated round actually spends
//! its time.
//!
//! `Network::step` is a pipeline of five mechanisms — route lookup
//! (id → channel slot), channel delivery (`take_deliverable_into`),
//! outbox flushing, the per-round activation shuffle, and stats
//! accounting. This bench times each mechanism in isolation on the same
//! data shapes the round loop produces, plus the whole `step` as the
//! ground truth the parts must add up against (roughly — the protocol
//! handlers themselves own the remainder).
//!
//! Besides the criterion group, the bench emits `BENCH_stepengine.json`
//! (workspace root, or wherever `SWN_BENCH_OUT` points) with one entry
//! per network size. The route phase times the dense [`SlotIndex`]
//! against the `BTreeMap` it replaced, so the recorded ratio documents
//! what the O(1) routing rewrite bought at each scale.
//!
//! Since the observability layer landed (DESIGN.md §9) the whole-step
//! measurement is a *pair*: the noop path (no sink attached — the
//! `OBS = false` monomorphization, which must stay the pre-observability
//! round loop) and the instrumented path (a `JsonlSink` over
//! `io::sink()` at `sample_every = 16`). The noop number is guarded
//! against the previously committed `BENCH_stepengine.json`: the ratio
//! is always printed, and with `SWN_BENCH_ENFORCE=1` a noop regression
//! beyond 3% fails the bench.
//!
//! Since the causal tracer landed (DESIGN.md §13) the instrumented path
//! also carries per-delivery cause tagging and cascade bookkeeping, so
//! the pair's *ratio* is guarded too: the instrumented step must stay
//! within `INSTRUMENTED_GUARD` (1.5×) of the detached step — printed
//! always, asserted under `SWN_BENCH_ENFORCE=1`.
//!
//! Since the active-set scheduler landed (DESIGN.md §12) the record also
//! carries a `stable_round` section: the cost of one *quiescent* round
//! under [`ScheduleMode::ActiveSet`] at n ∈ {2048, 8192, 65536}, next to
//! the full-scan stable round at the same size. A quiescent round visits
//! no node at all, so its cost must be (near-)flat in n — the scaling
//! guard prints the 65536/2048 ratio and, under `SWN_BENCH_ENFORCE=1`,
//! fails the bench when it exceeds 4× (the full-scan engine is ~linear,
//! i.e. ~32× over that span).
//!
//! `SWN_BENCH_QUICK=1` shrinks sizes and iteration counts so CI can
//! smoke-run the bench in seconds.
//!
//! [`SlotIndex`]: swn_sim::slots::SlotIndex
//! [`ScheduleMode::ActiveSet`]: swn_sim::ScheduleMode::ActiveSet

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_core::invariants::make_sorted_ring;
use swn_core::message::{Message, MessageKind};
use swn_core::outbox::Outbox;
use swn_sim::channel::{Channel, DeliveryPolicy};
use swn_sim::convergence::drain_to_quiescence;
use swn_sim::obs::JsonlSink;
use swn_sim::slots::SlotIndex;
use swn_sim::trace::RoundStats;
use swn_sim::{Network, ScheduleMode};

/// Sampling interval for the instrumented whole-step measurement.
const OBS_SAMPLE_EVERY: u64 = 16;

/// Allowed regression of the noop step against the committed baseline.
const NOOP_GUARD: f64 = 1.03;

/// Allowed cost of the instrumented step relative to the detached step
/// measured in the same run: full observation — histograms, causal
/// tagging, cascade bookkeeping, JSONL sampling — may not exceed 1.5×.
const INSTRUMENTED_GUARD: f64 = 1.5;

/// Allowed growth of the quiescent-round cost from n = 2048 to
/// n = 65536. A quiescent round is O(1) — an empty agenda shuffle and a
/// default stats row — so 32× more nodes must not cost more than 4×.
const QUIESCENT_SCALE_GUARD: f64 = 4.0;

fn quick_mode() -> bool {
    std::env::var_os("SWN_BENCH_QUICK").is_some()
}

fn out_path() -> std::path::PathBuf {
    match std::env::var_os("SWN_BENCH_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_stepengine.json"),
    }
}

/// Times `iters` calls of `f` and returns nanoseconds per call.
fn ns_per<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// A fixed pseudo-random probe sequence over the live id set, drawn
/// ahead of timing so the dense index and the `BTreeMap` chase the same
/// ids in the same order.
fn probe_sequence(ids: &[NodeId], len: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| ids[rng.random_range(0..ids.len())])
        .collect()
}

/// One size's phase timings, all in nanoseconds per operation (the
/// operation is named in each field's doc).
#[derive(Serialize)]
struct PhaseEntry {
    n: usize,
    /// One whole `Network::step` on a warmed stable ring, *no sink
    /// attached* — the `OBS = false` monomorphization the guard pins.
    step_ns_per_round: f64,
    /// The same step with a `JsonlSink` over `io::sink()` attached at
    /// `sample_every = 16` — the instrumented half of the pair.
    step_instrumented_ns_per_round: f64,
    /// `step_instrumented / step` — what observation costs when on.
    obs_overhead_ratio: f64,
    /// One `SlotIndex::get` of a live id (the engine's route lookup).
    route_dense_ns_per_lookup: f64,
    /// The same lookup on the `BTreeMap` the dense index replaced.
    route_btree_ns_per_lookup: f64,
    /// `route_btree / route_dense` — what O(1) routing bought.
    route_speedup: f64,
    /// One push-4-deliver cycle of `Channel::take_deliverable_into`
    /// (the stable-state per-node channel load).
    channel_ns_per_cycle: f64,
    /// One 4-send outbox batch: send, walk `sends()`, clear.
    outbox_ns_per_flush: f64,
    /// One activation-order rebuild: copy the cached sorted slot list
    /// and shuffle it (length n).
    shuffle_ns_per_round: f64,
    /// One round of stats accounting: a few kind counters plus the
    /// by-value `RoundStats` push into the trace.
    stats_ns_per_round: f64,
}

/// One size's stable-round pair: the active-set quiescent round against
/// the full-scan stable round, both on a converged sorted ring.
#[derive(Serialize)]
struct StableRoundEntry {
    n: usize,
    /// Rounds the freshly scheduled ring needed to drain its agenda.
    drain_rounds: u64,
    /// One quiescent `Network::step` under `ScheduleMode::ActiveSet` —
    /// empty agenda, zero node turns, zero RNG draws.
    stable_round_ns: f64,
    /// One full-scan stable round at the same n (every node acts, the
    /// perpetual lrl walk keeps ~n messages in flight).
    full_scan_round_ns: f64,
    /// `full_scan / stable` — what quiescence detection buys per round.
    active_speedup: f64,
}

#[derive(Serialize)]
struct StepengineRecord {
    quick: bool,
    entries: Vec<PhaseEntry>,
    stable_round: Vec<StableRoundEntry>,
}

/// The subset of a previously committed record the overhead guard
/// needs. Extra fields in old/new files are ignored on parse, so this
/// reads baselines from before and after the instrumented pair landed.
#[derive(Deserialize)]
struct PrevEntry {
    n: usize,
    step_ns_per_round: f64,
}

#[derive(Deserialize)]
struct PrevRecord {
    quick: bool,
    entries: Vec<PrevEntry>,
}

/// Whole-step ground truth: per-round cost on a warmed stable ring,
/// optionally with an attached JSONL sink draining into `io::sink()`.
fn measure_step(n: usize, rounds: u64, instrumented: bool) -> f64 {
    let ids = evenly_spaced_ids(n);
    let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    net.run(20);
    if instrumented {
        let sink = Box::new(JsonlSink::new(Box::new(std::io::sink())));
        net.attach_sink(sink, OBS_SAMPLE_EVERY);
    }
    let start = Instant::now();
    net.run(rounds);
    let ns = start.elapsed().as_secs_f64() * 1e9 / rounds as f64;
    net.detach_sink();
    ns
}

/// Prints (and under `SWN_BENCH_ENFORCE=1` asserts) the noop-step ratio
/// against the previously committed record at the same `(quick, n)`.
fn guard_against_previous(record: &StepengineRecord, path: &std::path::Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("stepengine guard: no previous record at {}", path.display());
        return;
    };
    let prev: PrevRecord = match serde_json::from_str(&text) {
        Ok(p) => p,
        Err(e) => {
            println!("stepengine guard: previous record unreadable ({e})");
            return;
        }
    };
    if prev.quick != record.quick {
        println!(
            "stepengine guard: previous record is {} mode, current is {} — skipping",
            if prev.quick { "quick" } else { "full" },
            if record.quick { "quick" } else { "full" },
        );
        return;
    }
    let enforce = std::env::var_os("SWN_BENCH_ENFORCE").is_some();
    for e in &record.entries {
        let Some(base) = prev.entries.iter().find(|p| p.n == e.n) else {
            continue;
        };
        let ratio = e.step_ns_per_round / base.step_ns_per_round.max(1e-9);
        println!(
            "stepengine guard n={}: noop step {:.0} ns vs baseline {:.0} ns ({:.3}x, limit {NOOP_GUARD}x{})",
            e.n,
            e.step_ns_per_round,
            base.step_ns_per_round,
            ratio,
            if enforce { ", enforced" } else { "" },
        );
        assert!(
            !enforce || ratio <= NOOP_GUARD,
            "noop step regressed at n={}: {ratio:.3}x > {NOOP_GUARD}x the committed baseline",
            e.n
        );
    }
}

/// Prints (and under `SWN_BENCH_ENFORCE=1` asserts) the instrumented /
/// noop step ratio measured within this run. Unlike the baseline guard
/// this needs no committed record — both halves of the pair come from
/// the same machine and the same binary.
fn guard_instrumented_overhead(entries: &[PhaseEntry]) {
    let enforce = std::env::var_os("SWN_BENCH_ENFORCE").is_some();
    for e in entries {
        println!(
            "stepengine guard n={}: instrumented step {:.0} ns vs noop {:.0} ns \
             ({:.3}x, limit {INSTRUMENTED_GUARD}x{})",
            e.n,
            e.step_instrumented_ns_per_round,
            e.step_ns_per_round,
            e.obs_overhead_ratio,
            if enforce { ", enforced" } else { "" },
        );
        assert!(
            !enforce || e.obs_overhead_ratio <= INSTRUMENTED_GUARD,
            "instrumented step too expensive at n={}: {:.3}x > {INSTRUMENTED_GUARD}x the \
             detached step (causal tagging must stay cheap)",
            e.n,
            e.obs_overhead_ratio
        );
    }
}

/// Stable-round pair: a converged ring under the active-set scheduler
/// drains its agenda, then every further step is a quiescent round; the
/// full-scan half re-measures `measure_step` at the same size.
fn measure_stable_round(n: usize, quick: bool) -> StableRoundEntry {
    let ids = evenly_spaced_ids(n);
    let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    net.set_schedule_mode(ScheduleMode::ActiveSet);
    // The first active rounds launch the ring-validation probe walks,
    // which traverse the whole ring one hop per round — so a fresh ring
    // needs ~n rounds (each O(1): just the walk frontier is active)
    // before the agenda is truly empty. The cap scales accordingly.
    let drain_rounds = drain_to_quiescence(&mut net, 4 * n as u64 + 1000).expect("ring must drain");
    // Shed the ~n drain rounds' stats rows: the timed loop below then
    // does identical trace work at every n (a quiescent round's only
    // memory traffic is its stats row), so the sizes compare fairly.
    drop(net.take_trace());
    let iters = if quick { 5_000 } else { 50_000 };
    let stable = ns_per(iters, || {
        net.step();
        black_box(net.round());
    });
    // Full-scan rounds are ~linear in n; cap the big sizes' sample so
    // the reference half stays a second, not a minute.
    let full_rounds = match (quick, n) {
        (true, _) => 30,
        (false, n) if n >= 65_536 => 60,
        (false, _) => 200,
    };
    let full = measure_step(n, full_rounds, false);
    StableRoundEntry {
        n,
        drain_rounds,
        stable_round_ns: stable,
        full_scan_round_ns: full,
        active_speedup: full / stable.max(1e-9),
    }
}

/// Prints (and under `SWN_BENCH_ENFORCE=1` asserts) the quiescent-round
/// scaling ratio between n = 2048 and n = 65536. Quick mode runs a
/// single size, so the guard reports itself skipped there.
fn guard_quiescent_scaling(stable: &[StableRoundEntry]) {
    let at = |n: usize| stable.iter().find(|e| e.n == n);
    let (Some(small), Some(big)) = (at(2048), at(65_536)) else {
        println!("stepengine guard: stable-round scaling needs n=2048 and n=65536 — skipped");
        return;
    };
    let enforce = std::env::var_os("SWN_BENCH_ENFORCE").is_some();
    let ratio = big.stable_round_ns / small.stable_round_ns.max(1e-9);
    println!(
        "stepengine guard: quiescent round {:.0} ns @ n=65536 vs {:.0} ns @ n=2048 \
         ({ratio:.3}x, limit {QUIESCENT_SCALE_GUARD}x{})",
        big.stable_round_ns,
        small.stable_round_ns,
        if enforce { ", enforced" } else { "" },
    );
    assert!(
        !enforce || ratio <= QUIESCENT_SCALE_GUARD,
        "quiescent round cost is not flat in n: {ratio:.3}x > {QUIESCENT_SCALE_GUARD}x \
         between n=2048 and n=65536"
    );
}

/// Route phase: dense `SlotIndex` vs the `BTreeMap` oracle over an
/// identical lookup stream of live ids.
fn measure_route(n: usize, iters: usize) -> (f64, f64) {
    let ids = evenly_spaced_ids(n);
    let mut index = SlotIndex::new();
    let mut map: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (slot, &id) in ids.iter().enumerate() {
        index.insert(id, slot);
        map.insert(id, slot);
    }
    let probes = probe_sequence(&ids, 4096, 42);
    let mut cursor = 0usize;
    let mut acc = 0usize;
    let dense = ns_per(iters, || {
        let id = probes[cursor % probes.len()];
        cursor += 1;
        acc += black_box(index.get(id)).unwrap_or(0);
    });
    black_box(acc);
    cursor = 0;
    let mut acc = 0usize;
    let btree = ns_per(iters, || {
        let id = probes[cursor % probes.len()];
        cursor += 1;
        acc += black_box(map.get(&id).copied()).unwrap_or(0);
    });
    black_box(acc);
    (dense, btree)
}

/// Channel phase: the stable-state per-node cycle — four same-round
/// pushes, then a `take_deliverable_into` one round later (every message
/// eligible, i.e. the swap fast path the engine hits almost always).
fn measure_channel(iters: usize) -> f64 {
    let mut ch = Channel::new();
    let mut out: Vec<Message> = Vec::new();
    let mut rng = StdRng::seed_from_u64(9);
    let mut now = 0u64;
    ns_per(iters, || {
        for k in 0..4u64 {
            ch.push(
                Message::Lin(NodeId::from_fraction((k + 1) as f64 / 8.0)),
                now,
            );
        }
        now += 1;
        ch.take_deliverable_into(now, DeliveryPolicy::Immediate, &mut rng, &mut out);
        black_box(out.len());
    })
}

/// Outbox phase: one batched flush — four sends, a walk of the send
/// list, and the buffer reset. (Route lookup and the channel push the
/// real flush performs are the other phases.)
fn measure_outbox(iters: usize) -> f64 {
    let mut ob = Outbox::new();
    let dests = [
        NodeId::from_fraction(0.2),
        NodeId::from_fraction(0.4),
        NodeId::from_fraction(0.6),
        NodeId::from_fraction(0.8),
    ];
    let mut total = 0usize;
    let out = ns_per(iters, || {
        for &d in &dests {
            ob.send(d, Message::Lin(d));
        }
        for &(dest, msg) in ob.sends() {
            total += usize::from(msg.carried_ids().any(|id| id == dest));
        }
        ob.clear();
    });
    black_box(total);
    out
}

/// Shuffle phase: the per-round activation order — copy the cached
/// sorted slot list into the scratch buffer and shuffle it.
fn measure_shuffle(n: usize, iters: usize) -> f64 {
    let sorted: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut rng = StdRng::seed_from_u64(11);
    ns_per(iters, || {
        order.clear();
        order.extend_from_slice(&sorted);
        order.shuffle(&mut rng);
        black_box(order.last().copied());
    })
}

/// Stats phase: a round's worth of counter bumps plus the by-value
/// `RoundStats` append into the trace (the clone this PR removed).
fn measure_stats(iters: usize) -> f64 {
    let mut trace: Vec<RoundStats> = Vec::with_capacity(iters);
    ns_per(iters, || {
        let mut stats = RoundStats::default();
        for _ in 0..2 {
            stats.count_sent(MessageKind::Lin);
            stats.count_delivered(MessageKind::Lin);
        }
        stats.count_sent(MessageKind::IncLrl);
        stats.count_delivered(MessageKind::ResLrl);
        trace.push(stats);
        black_box(stats.total_sent());
    })
}

fn phase_entry(n: usize, quick: bool) -> PhaseEntry {
    let lookup_iters = if quick { 1 << 16 } else { 1 << 20 };
    let cycle_iters = if quick { 20_000 } else { 100_000 };
    let round_iters = if quick { 200 } else { 1_000 };
    let step_rounds = if quick { 30 } else { 200 };
    let (route_dense, route_btree) = measure_route(n, lookup_iters);
    // The instrumented/noop pair feeds a ratio guard, so measure the two
    // arms interleaved and keep each arm's minimum: a burst of machine
    // contention then penalizes both arms instead of skewing the ratio.
    let mut step = f64::MAX;
    let mut step_obs = f64::MAX;
    for _ in 0..3 {
        step = step.min(measure_step(n, step_rounds, false));
        step_obs = step_obs.min(measure_step(n, step_rounds, true));
    }
    PhaseEntry {
        n,
        step_ns_per_round: step,
        step_instrumented_ns_per_round: step_obs,
        obs_overhead_ratio: step_obs / step.max(1e-9),
        route_dense_ns_per_lookup: route_dense,
        route_btree_ns_per_lookup: route_btree,
        route_speedup: route_btree / route_dense.max(1e-9),
        channel_ns_per_cycle: measure_channel(cycle_iters),
        outbox_ns_per_flush: measure_outbox(cycle_iters),
        shuffle_ns_per_round: measure_shuffle(n, round_iters),
        stats_ns_per_round: measure_stats(cycle_iters),
    }
}

/// Emits `BENCH_stepengine.json` and prints the per-size breakdown.
fn emit_stepengine_record(_c: &mut Criterion) {
    let quick = quick_mode();
    let sizes: &[usize] = if quick { &[256] } else { &[2048, 8192] };
    let stable_sizes: &[usize] = if quick { &[256] } else { &[2048, 8192, 65_536] };
    let entries: Vec<PhaseEntry> = sizes.iter().map(|&n| phase_entry(n, quick)).collect();
    for e in &entries {
        println!(
            "stepengine n={}: step {:.0} ns/round (instrumented {:.0} ns, {:.3}x) | route {:.1} ns \
             dense vs {:.1} ns btree ({:.2}x) | channel {:.0} ns/cycle | outbox {:.0} ns/flush \
             | shuffle {:.0} ns/round | stats {:.0} ns/round",
            e.n,
            e.step_ns_per_round,
            e.step_instrumented_ns_per_round,
            e.obs_overhead_ratio,
            e.route_dense_ns_per_lookup,
            e.route_btree_ns_per_lookup,
            e.route_speedup,
            e.channel_ns_per_cycle,
            e.outbox_ns_per_flush,
            e.shuffle_ns_per_round,
            e.stats_ns_per_round,
        );
    }
    let stable_round: Vec<StableRoundEntry> = stable_sizes
        .iter()
        .map(|&n| measure_stable_round(n, quick))
        .collect();
    for e in &stable_round {
        println!(
            "stepengine stable_round n={}: quiescent {:.0} ns/round vs full-scan {:.0} ns/round \
             ({:.1}x) after {} drain rounds",
            e.n, e.stable_round_ns, e.full_scan_round_ns, e.active_speedup, e.drain_rounds,
        );
    }
    guard_instrumented_overhead(&entries);
    guard_quiescent_scaling(&stable_round);
    let record = StepengineRecord {
        quick,
        entries,
        stable_round,
    };
    let path = out_path();
    guard_against_previous(&record, &path);
    let json = serde_json::to_string(&record).expect("serialize bench record");
    std::fs::write(&path, json).expect("write BENCH_stepengine.json");
    println!("stepengine record -> {}", path.display());
}

/// The same phases as criterion benchmarks, so regressions show up in
/// the regular bench report with statistics.
fn bench_phases(c: &mut Criterion) {
    let quick = quick_mode();
    let n = if quick { 256 } else { 2048 };
    let mut group = c.benchmark_group("stepengine");
    group.sample_size(if quick { 5 } else { 20 });

    let ids = evenly_spaced_ids(n);
    let mut index = SlotIndex::new();
    let mut map: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (slot, &id) in ids.iter().enumerate() {
        index.insert(id, slot);
        map.insert(id, slot);
    }
    let probes = probe_sequence(&ids, 4096, 42);
    let mut cursor = 0usize;
    group.bench_with_input(BenchmarkId::new("route_dense", n), &n, |b, _| {
        b.iter(|| {
            let id = probes[cursor % probes.len()];
            cursor += 1;
            black_box(index.get(id))
        });
    });
    cursor = 0;
    group.bench_with_input(BenchmarkId::new("route_btree", n), &n, |b, _| {
        b.iter(|| {
            let id = probes[cursor % probes.len()];
            cursor += 1;
            black_box(map.get(&id).copied())
        });
    });

    let mut ch = Channel::new();
    let mut out: Vec<Message> = Vec::new();
    let mut rng = StdRng::seed_from_u64(9);
    let mut now = 0u64;
    group.bench_with_input(BenchmarkId::new("channel_cycle", n), &n, |b, _| {
        b.iter(|| {
            for k in 0..4u64 {
                ch.push(
                    Message::Lin(NodeId::from_fraction((k + 1) as f64 / 8.0)),
                    now,
                );
            }
            now += 1;
            ch.take_deliverable_into(now, DeliveryPolicy::Immediate, &mut rng, &mut out);
            black_box(out.len())
        });
    });

    let sorted: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut shuffle_rng = StdRng::seed_from_u64(11);
    group.bench_with_input(BenchmarkId::new("shuffle", n), &n, |b, _| {
        b.iter(|| {
            order.clear();
            order.extend_from_slice(&sorted);
            order.shuffle(&mut shuffle_rng);
            black_box(order.last().copied())
        });
    });

    // The instrumented-vs-noop whole-step pair, as statistics-backed
    // criterion benchmarks mirroring the JSON record's pair.
    let step_n = if quick { 128 } else { 1024 };
    let ids = evenly_spaced_ids(step_n);
    let mut noop_net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    noop_net.run(20);
    group.bench_with_input(
        BenchmarkId::new("stable_step_noop", step_n),
        &step_n,
        |b, _| {
            b.iter(|| {
                noop_net.step();
                black_box(noop_net.round())
            });
        },
    );
    let mut obs_net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    obs_net.run(20);
    obs_net.attach_sink(
        Box::new(JsonlSink::new(Box::new(std::io::sink()))),
        OBS_SAMPLE_EVERY,
    );
    group.bench_with_input(
        BenchmarkId::new("stable_step_obs", step_n),
        &step_n,
        |b, _| {
            b.iter(|| {
                obs_net.step();
                black_box(obs_net.round())
            });
        },
    );
    obs_net.detach_sink();
    // The quiescent round under the active-set scheduler — the number
    // the 4x scaling guard pins, with criterion statistics behind it.
    let mut q_net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    q_net.set_schedule_mode(ScheduleMode::ActiveSet);
    drain_to_quiescence(&mut q_net, 4 * step_n as u64 + 1000).expect("ring must drain");
    drop(q_net.take_trace());
    group.bench_with_input(
        BenchmarkId::new("quiescent_step", step_n),
        &step_n,
        |b, _| {
            b.iter(|| {
                q_net.step();
                black_box(q_net.round())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, emit_stepengine_record, bench_phases);
criterion_main!(benches);
