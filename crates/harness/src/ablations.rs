//! **A1–A3 — Ablations of the design choices DESIGN.md calls out.**
//!
//! * **A1**: the paper extends plain linearization with long-range
//!   shortcuts in `linearize` (Algorithm 2). How much does that buy
//!   during convergence?
//! * **A2**: the forget exponent ε trades link lifetime against
//!   distribution fit and routing quality.
//! * **A3**: the probing cadence trades standing message cost against
//!   fault-repair latency.

use crate::table::{f2, f3, mean, Table};
use crate::testbed::stabilized_network;
use swn_baselines::chaintreau::MoveForgetRing;
use swn_core::config::ProtocolConfig;
use swn_core::id::evenly_spaced_ids;
use swn_sim::convergence::run_to_ring;
use swn_sim::init::{generate, InitialTopology};
use swn_sim::parallel::run_trials;
use swn_topology::distribution::{ks_to_cdf, log_corrected_harmonic_cdf, log_log_slope};
use swn_topology::routing::evaluate_routing;

/// Shared scale knob for the ablations.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes (A1).
    pub sizes: Vec<usize>,
    /// Trials per cell.
    pub trials: usize,
    /// Ring size for A2/A3.
    pub n: usize,
    /// Warmup rounds for A2/A3 fixtures.
    pub warmup: u64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            sizes: vec![32, 64, 128, 256],
            trials: 20,
            n: 512,
            warmup: 20_000,
        }
    }

    /// Reduced scale.
    pub fn quick() -> Self {
        Params {
            sizes: vec![32, 64],
            trials: 6,
            n: 128,
            warmup: 3_000,
        }
    }
}

/// A1 cell: mean rounds to the sorted ring with/without the shortcut.
#[derive(Clone, Copy, Debug)]
pub struct A1Point {
    /// Network size.
    pub n: usize,
    /// Mean rounds to the sorted ring with lrl shortcuts.
    pub rounds_with: f64,
    /// Mean rounds with plain linearization.
    pub rounds_without: f64,
}

/// Measures A1.
pub fn measure_a1(p: &Params) -> Vec<A1Point> {
    let run_one = |n: usize, shortcut: bool| -> f64 {
        let reports = run_trials(p.trials, |t| {
            let seed = t as u64 * 101 + n as u64;
            let cfg = ProtocolConfig {
                lrl_shortcut: shortcut,
                ..Default::default()
            };
            let ids = evenly_spaced_ids(n);
            let mut net = generate(InitialTopology::RandomSparse { extra: 3 }, &ids, cfg, seed)
                .into_network(seed);
            run_to_ring(&mut net, 1_000_000)
                .rounds_to_ring
                .expect("must stabilize") as f64
        });
        mean(&reports)
    };
    p.sizes
        .iter()
        .map(|&n| A1Point {
            n,
            rounds_with: run_one(n, true),
            rounds_without: run_one(n, false),
        })
        .collect()
}

/// Renders A1.
pub fn run_a1(p: &Params) -> Table {
    let mut t = Table::new(
        "A1  Linearization with vs without lrl shortcuts",
        "forwarding lin messages over long-range links accelerates convergence (Algorithm 2 extension)",
        &["n", "rounds with", "rounds without", "speedup"],
    );
    for pt in measure_a1(p) {
        t.push_row(vec![
            pt.n.to_string(),
            f2(pt.rounds_with),
            f2(pt.rounds_without),
            f2(pt.rounds_without / pt.rounds_with.max(1.0)),
        ]);
    }
    t
}

/// A2 cell: distribution fit and routing for one ε.
#[derive(Clone, Copy, Debug)]
pub struct A2Point {
    /// The forget exponent measured.
    pub epsilon: f64,
    /// KS distance to the log-corrected harmonic law at this ε.
    pub ks_corrected: f64,
    /// Log–log density slope of the link lengths.
    pub slope: f64,
    /// Mean greedy-routing hops on the resulting graph.
    pub mean_hops: f64,
    /// Forget events per node per round.
    pub forget_rate: f64,
}

/// Measures A2 on the fast move-and-forget fixture.
pub fn measure_a2(p: &Params, epsilons: &[f64]) -> Vec<A2Point> {
    epsilons
        .iter()
        .map(|&eps| {
            let mut mf = MoveForgetRing::new(p.n, eps, 4040);
            mf.run(p.warmup);
            let mut lengths = Vec::new();
            for _ in 0..100 {
                mf.run(10);
                lengths.extend(mf.lengths());
            }
            let stats = evaluate_routing(
                &mf.graph(),
                300,
                u32::try_from(8 * p.n).expect("hop budget fits u32"),
                5,
                None,
            );
            A2Point {
                epsilon: eps,
                ks_corrected: ks_to_cdf(&lengths, &log_corrected_harmonic_cdf(p.n / 2, eps)),
                slope: log_log_slope(&lengths, p.n / 2).unwrap_or(f64::NAN),
                mean_hops: stats.mean_hops,
                forget_rate: mf.forgets() as f64 / (p.warmup + 1000) as f64 / p.n as f64,
            }
        })
        .collect()
}

/// Renders A2.
pub fn run_a2(p: &Params) -> Table {
    let mut t = Table::new(
        format!("A2  Forget exponent eps sweep (n = {})", p.n),
        "small eps: long-lived links, best navigability; large eps: tokens die young and stay near origin",
        &["eps", "KS corr", "slope", "mean hops", "forgets/node/rd"],
    );
    for pt in measure_a2(p, &[0.01, 0.1, 0.5, 1.0]) {
        t.push_row(vec![
            format!("{}", pt.epsilon),
            f3(pt.ks_corrected),
            f3(pt.slope),
            f2(pt.mean_hops),
            f3(pt.forget_rate),
        ]);
    }
    t
}

/// A3 cell: standing cost vs repair behaviour for one probe period.
#[derive(Clone, Copy, Debug)]
pub struct A3Point {
    /// Probing period measured.
    pub period: u64,
    /// Stable-state messages per node per round at this period.
    pub msgs_per_node_round: f64,
    /// Fraction of trials in which the halves merged at all. Probing
    /// races the forget process for the single bridging link: φ(3) ≈ 0.6
    /// already, so a probe that arrives later than the token's first
    /// forget opportunity loses the bridge **permanently** — the paper's
    /// Theorem 4.3 implicitly relies on probing every round.
    pub merge_success: f64,
    /// Rounds until the bridging probe-repair fired, among successful
    /// trials (≈ the prober's random phase within the period).
    pub repair_latency: f64,
    /// Rounds until the full sorted ring, among successful trials.
    pub recovery_rounds: f64,
}

/// Builds the fault only probing can repair: two internally sorted halves
/// whose only connection is a single long-range link crossing the split.
/// The probe along that link must fail at the left half's maximum and
/// create the bridge edge (Theorem 4.3's repair mechanism); linearization
/// alone cannot see across the gap.
/// Exposed for debugging and tests.
pub fn debug_split_brain(
    n: usize,
    bridge_from: usize,
    bridge_to: usize,
    cfg: ProtocolConfig,
    phase_seed: u64,
) -> Vec<swn_core::node::Node> {
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};
    use swn_core::id::Extended;
    use swn_core::node::Node;
    let ids = evenly_spaced_ids(n);
    let half = n / 2;
    let mut rng = StdRng::seed_from_u64(phase_seed);
    (0..n)
        .map(|i| {
            let l = if i == 0 || i == half {
                Extended::NegInf
            } else {
                Extended::Fin(ids[i - 1])
            };
            let r = if i + 1 == half || i + 1 == n {
                Extended::PosInf
            } else {
                Extended::Fin(ids[i + 1])
            };
            let lrl = if i == bridge_from {
                ids[bridge_to]
            } else {
                ids[i]
            };
            Node::with_state(ids[i], l, r, lrl, None, cfg)
                .with_probe_phase(rng.random_range(0..cfg.probe_period))
        })
        .collect()
}

/// Measures A3: stable-state message rate, and rounds to merge a
/// split-brain network whose halves are bridged only by one long-range
/// link, as the probing cadence stretches.
pub fn measure_a3(p: &Params, periods: &[u64]) -> Vec<A3Point> {
    periods
        .iter()
        .map(|&period| {
            let cfg = ProtocolConfig {
                probe_period: period,
                ..Default::default()
            };
            // Standing cost.
            let mut net = stabilized_network(p.n, cfg, 70, p.warmup.min(2000));
            let start = net.trace().len();
            net.run(100);
            let sent = net.trace().sent_since(start);
            let rate = sent as f64 / (100.0 * p.n as f64);
            // Repair behaviour: probing is the only mechanism that can
            // merge the halves, and it races the forget process for the
            // single bridging link. A merge happens within a few hundred
            // rounds or never (the bridge was forgotten → permanent
            // partition), so a short budget suffices.
            let m = p.n.min(128);
            let recov = run_trials(p.trials, |t| {
                let seed = t as u64 * 17 + 3;
                // A length-1 bridge: the repair fires at the prober's own
                // probing step, so latency = its phase within the period.
                let bridge_from = m / 2 - 1;
                let bridge_to = m / 2;
                let nodes = debug_split_brain(m, bridge_from, bridge_to, cfg, seed ^ 0x9d);
                let mut net = swn_sim::Network::new(nodes, seed);
                let total = run_to_ring(&mut net, 20 * m as u64).rounds_to_ring;
                let latency = net
                    .trace()
                    .rounds()
                    .iter()
                    .position(|r| r.probe_repairs > 0)
                    .map(|i| (i + 1) as f64);
                (latency, total)
            });
            let successes: Vec<(f64, f64)> = recov
                .iter()
                .filter_map(|(lat, total)| total.map(|t| (lat.unwrap_or(f64::NAN), t as f64)))
                .collect();
            A3Point {
                period,
                msgs_per_node_round: rate,
                merge_success: successes.len() as f64 / recov.len() as f64,
                repair_latency: mean(&successes.iter().map(|r| r.0).collect::<Vec<_>>()),
                recovery_rounds: mean(&successes.iter().map(|r| r.1).collect::<Vec<_>>()),
            }
        })
        .collect()
}

/// Renders A3.
pub fn run_a3(p: &Params) -> Table {
    let mut t = Table::new(
        "A3  Probing cadence sweep",
        "longer probe periods cut standing cost, but probing races the forget process for \
         bridge links: probe too rarely and single-link bridges are forgotten before any probe \
         crosses them, partitioning the network permanently — the protocol's every-round probing \
         is load-bearing",
        &[
            "period",
            "msgs/node/rd",
            "merge success",
            "repair latency",
            "merge rounds",
        ],
    );
    for pt in measure_a3(p, &[1, 2, 4, 8, 16]) {
        t.push_row(vec![
            pt.period.to_string(),
            f2(pt.msgs_per_node_round),
            f2(pt.merge_success),
            f2(pt.repair_latency),
            f2(pt.recovery_rounds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_both_variants_stabilize() {
        let mut p = Params::quick();
        p.sizes = vec![32];
        p.trials = 4;
        let pts = measure_a1(&p);
        assert!(pts[0].rounds_with > 0.0);
        assert!(pts[0].rounds_without > 0.0);
    }

    #[test]
    fn a2_larger_eps_forgets_more_and_routes_worse() {
        let mut p = Params::quick();
        p.n = 256;
        p.warmup = 4000;
        let pts = measure_a2(&p, &[0.05, 1.0]);
        assert!(
            pts[1].forget_rate > pts[0].forget_rate,
            "forget rate must rise with eps: {} vs {}",
            pts[0].forget_rate,
            pts[1].forget_rate
        );
        assert!(
            pts[1].mean_hops > pts[0].mean_hops,
            "routing must degrade with eps: {} vs {}",
            pts[0].mean_hops,
            pts[1].mean_hops
        );
    }

    #[test]
    fn a3_longer_period_cheaper_but_loses_bridges() {
        let mut p = Params::quick();
        p.trials = 10;
        let pts = measure_a3(&p, &[1, 16]);
        assert!(
            pts[1].msgs_per_node_round < pts[0].msgs_per_node_round,
            "period 16 must send fewer messages: {} vs {}",
            pts[0].msgs_per_node_round,
            pts[1].msgs_per_node_round
        );
        // Every-round probing always wins the race against the forget
        // process (the token is too young to be forgotten at its first
        // probe); at period 16 the bridge usually dies first.
        assert_eq!(pts[0].merge_success, 1.0, "period 1 must always merge");
        assert!(
            pts[1].merge_success < 0.8,
            "period 16 should usually lose the bridge: {}",
            pts[1].merge_success
        );
    }

    #[test]
    fn ablation_tables_render() {
        let mut p = Params::quick();
        p.sizes = vec![32];
        p.trials = 2;
        p.n = 64;
        p.warmup = 400;
        assert!(run_a1(&p).render().contains("A1"));
        assert!(run_a2(&p).render().contains("A2"));
        assert!(run_a3(&p).render().contains("A3"));
    }
}
