//! **E10 — Self-stabilization under sustained faults.**
//!
//! The convergence theorems assume the Section II model: channels lose
//! nothing. This experiment measures what the protocol *actually*
//! delivers when that assumption is violated at runtime by the
//! deterministic fault engine (`swn_sim::faults`): transient state
//! damage (a crash storm, a burst partition blocking seam repair, a
//! k-node state perturbation) combined with a sustained message-loss
//! rate during recovery.
//!
//! Reported per scenario: MTTR (rounds from the fault instant until the
//! sorted ring holds again) as p50/p99/max quantiles from the log2
//! histogram, plus message overhead relative to the steady-state rate.
//! Shape to verify: MTTR grows monotonically with the sustained drop
//! rate (p = 0 is the damage-only baseline — its loss window draws no
//! injector randomness, so that arm is the crash shock replayed over an
//! otherwise fault-free computation), and every transient-fault
//! scenario recovers: survivors keep stored pointers to the victims, so
//! the knowledge graph stays connected and Theorem 4.3 still applies
//! between faults.
//!
//! The companion demo ([`run_disconnect_demo`]) shows the one fault the
//! process provably cannot absorb: dropping the *sole carrier* of an
//! identifier. The watchdog's knowledge-closure argument classifies it
//! as permanently disconnected and names the culprit drop.

use crate::table::{f2, mean, Table};
use crate::testbed::harmonic_network;
use swn_core::config::ProtocolConfig;
use swn_core::id::{Extended, NodeId};
use swn_core::message::Message;
use swn_core::node::Node;
use swn_sim::faults::{watch_recovery, FaultPlan, Verdict, WatchReport};
use swn_sim::obs::flight::FlightRecorder;
use swn_sim::obs::{Histogram, NoopSink, Sink};
use swn_sim::parallel::run_trials;
use swn_sim::Network;

/// Parameters for E10.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Trials per scenario.
    pub trials: usize,
    /// Sustained per-message drop probabilities to sweep. The first and
    /// last entries anchor the monotonicity check.
    pub drop_rates: Vec<f64>,
    /// Nodes whose neighbour state the perturbation scrambles.
    pub damage: usize,
    /// Nodes crashed by the crash-storm scenario.
    pub crash_nodes: usize,
    /// Rounds a crashed node stays down.
    pub down_for: u64,
    /// Rounds the burst partition stays up.
    pub partition_len: u64,
    /// Round budget per recovery watch.
    pub budget: u64,
    /// Protocol ε.
    pub epsilon: f64,
}

impl Params {
    /// Full-scale run.
    pub fn full() -> Self {
        Params {
            n: 256,
            trials: 20,
            drop_rates: vec![0.0, 0.01, 0.05, 0.1],
            damage: 8,
            crash_nodes: 6,
            down_for: 20,
            partition_len: 60,
            budget: 200_000,
            epsilon: 0.1,
        }
    }

    /// Reduced scale (CI smoke).
    pub fn quick() -> Self {
        Params {
            n: 64,
            trials: 8,
            drop_rates: vec![0.0, 0.01, 0.05, 0.1],
            damage: 6,
            crash_nodes: 4,
            down_for: 10,
            partition_len: 25,
            budget: 50_000,
            epsilon: 0.1,
        }
    }
}

/// Aggregated recovery metrics for one fault scenario.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Scenario label (table row key).
    pub label: String,
    /// Trials whose watchdog verdict was `Recovered`.
    pub recovered: usize,
    /// Total trials.
    pub trials: usize,
    /// MTTR distribution (rounds from fault instant to sorted ring).
    pub mttr: Histogram,
    /// Smallest recovered MTTR (`u64::MAX` when no trial recovered) —
    /// the log2 histogram cannot answer "did every trial wait at least
    /// k rounds", this can.
    pub min_mttr: u64,
    /// Mean messages sent during the watch.
    pub mean_messages: f64,
    /// Mean ratio of the watch's message rate to the pre-fault
    /// steady-state rate (1.0 = no overhead).
    pub mean_overhead: f64,
    /// Mean messages destroyed by the injector per trial.
    pub mean_dropped: f64,
    /// Per-trial repair-cascade depth maxima (hops from a root delivery
    /// in the causal DAG) — one sample per trial. Relates cascade shape
    /// to MTTR: deeper cascades mean longer serial repair chains.
    pub cascade_depth: Histogram,
    /// Mean peak cascade width (deliveries sharing one depth level) —
    /// the parallelism of the repair.
    pub mean_cascade_width: f64,
}

/// One trial: warm fixture, measure the steady rate, inject `plan`, watch.
/// `plan` is built from the live network so scenarios can name real ids.
fn run_trial(
    p: &Params,
    seed: u64,
    mk_plan: impl Fn(&Network, u64) -> FaultPlan,
) -> (WatchReport, f64) {
    let cfg = ProtocolConfig::with_epsilon(p.epsilon);
    let mut net = harmonic_network(p.n, cfg, seed);
    // A sink makes the causal tracer live, so `watch_recovery` can
    // bracket a cascade window and fill `WatchReport::cascade`.
    // Observers consume no RNG, so trial outcomes are unchanged.
    net.attach_sink(Box::new(NoopSink), u64::MAX);
    // Steady-state message rate from a pre-fault window: the overhead
    // denominator. The regular action keeps chattering during recovery,
    // so raw message counts overstate the fault's cost.
    let window: usize = 20;
    net.run(window as u64);
    let rate = net.trace().sent_in_last(window) as f64 / window as f64;
    let plan = mk_plan(&net, net.round() + 1);
    net.attach_faults(plan);
    // Execute the fault round itself, then watch: the watchdog treats
    // "sorted ring holds" as already-recovered, so the damage must land
    // before the watch starts. MTTR is counted from the damaged state.
    net.step();
    let rep = watch_recovery(&mut net, p.budget);
    net.detach_faults();
    (rep, rate)
}

fn aggregate(label: String, trials: Vec<(WatchReport, f64)>) -> FaultPoint {
    let mut mttr = Histogram::new();
    let mut min_mttr = u64::MAX;
    let mut recovered = 0;
    let mut overheads = Vec::new();
    let mut cascade_depth = Histogram::new();
    let mut widths = Vec::new();
    for (rep, _) in &trials {
        if let Some(rounds) = rep.verdict.recovered_rounds() {
            recovered += 1;
            mttr.record(rounds);
            min_mttr = min_mttr.min(rounds);
        }
        if let Some(c) = &rep.cascade {
            cascade_depth.record(c.depth_max());
            widths.push(c.stats.width_max() as f64);
        }
    }
    for (rep, rate) in &trials {
        if let Verdict::Recovered { rounds } = rep.verdict {
            let expected = rate * rounds.max(1) as f64;
            if expected > 0.0 {
                overheads.push(rep.messages as f64 / expected);
            }
        }
    }
    FaultPoint {
        label,
        recovered,
        trials: trials.len(),
        mttr,
        min_mttr,
        mean_messages: mean(
            &trials
                .iter()
                .map(|(r, _)| r.messages as f64)
                .collect::<Vec<_>>(),
        ),
        mean_overhead: mean(&overheads),
        mean_dropped: mean(
            &trials
                .iter()
                .map(|(r, _)| r.dropped_fault as f64)
                .collect::<Vec<_>>(),
        ),
        cascade_depth,
        mean_cascade_width: mean(&widths),
    }
}

/// Spread-out interior crash victims for the storm scenarios.
fn storm_victims(net: &Network, count: usize) -> Vec<NodeId> {
    let ids = net.ids();
    let stride = (ids.len() / (count + 1)).max(1);
    (1..=count).map(|k| ids[(k * stride) % ids.len()]).collect()
}

/// The drop-rate matrix: a crash storm at the fault instant
/// (`crash_nodes` spread-out nodes lose their state and channels, down
/// for `down_for` rounds, restart blank) plus a sustained loss window at
/// rate `p` for the whole recovery. Re-integrating the blank survivors
/// takes real message exchanges, which the loss rate destroys — that is
/// where MTTR picks up its dependence on `p`. The `p = 0` arm is the
/// damage-only baseline: its loss window is inert (the injector draws no
/// randomness for it), so that arm is the fault-free computation plus
/// the seeded crashes.
pub fn measure_drop_matrix(p: &Params) -> Vec<FaultPoint> {
    p.drop_rates
        .iter()
        .map(|&rate| {
            let trials = run_trials(p.trials, |t| {
                let seed = t as u64 * 41 + p.n as u64;
                run_trial(p, seed, |net, fault_round| {
                    let mut plan = FaultPlan::new(seed ^ 0xfa17).with_drop(
                        fault_round,
                        fault_round + p.budget,
                        rate,
                    );
                    for v in storm_victims(net, p.crash_nodes) {
                        plan = plan.with_crash(fault_round, v, p.down_for);
                    }
                    plan
                })
            });
            aggregate(
                format!("crash storm k={} + drop p={rate}", p.crash_nodes),
                trials,
            )
        })
        .collect()
}

/// Burst partition: the node *at the cut* crashes and every cross-cut
/// message is destroyed for `partition_len` rounds. The restarted node's
/// true successor sits on the far side, and its `Lin` advertisements —
/// the only messages that carry the successor's id to the seam — die at
/// the cut, so the ring cannot close before the window does: MTTR is at
/// least the burst length in every trial.
pub fn measure_burst_partition(p: &Params) -> FaultPoint {
    let trials = run_trials(p.trials, |t| {
        let seed = t as u64 * 43 + p.n as u64;
        run_trial(p, seed, |net, fault_round| {
            let ids = net.ids();
            let cut = ids[ids.len() / 2];
            FaultPlan::new(seed ^ 0xb125)
                .with_crash(fault_round, cut, p.down_for)
                .with_partition(fault_round, fault_round + p.partition_len, cut)
        })
    });
    aggregate(
        format!("partition burst ({} rounds, crash at cut)", p.partition_len),
        trials,
    )
}

/// Neighbour-state perturbation: `damage` nodes get their `r`/`lrl`/ring
/// pointers randomized (their `l` survives, keeping the knowledge graph
/// connected). Interior victims heal within a round or two — the `Lin`
/// advertisements already in their channels restore the true neighbours
/// — while a scrambled *extremum* additionally needs a ring-edge
/// bootstrap cycle to re-close the seam. Either way the damage is far
/// cheaper than a crash: no state is lost, only misdirected.
pub fn measure_perturbation(p: &Params) -> FaultPoint {
    let trials = run_trials(p.trials, |t| {
        let seed = t as u64 * 47 + p.n as u64;
        run_trial(p, seed, |_, fault_round| {
            FaultPlan::new(seed ^ 0xc245).with_perturbation(fault_round, p.damage)
        })
    });
    aggregate(format!("perturb k={} (state scramble)", p.damage), trials)
}

fn point_row(pt: &FaultPoint) -> Vec<String> {
    vec![
        pt.label.clone(),
        format!("{}/{}", pt.recovered, pt.trials),
        pt.mttr.approx_quantile(0.5).to_string(),
        pt.mttr.approx_quantile(0.99).to_string(),
        pt.mttr.max().to_string(),
        f2(pt.mean_messages),
        f2(pt.mean_overhead),
        f2(pt.mean_dropped),
        pt.cascade_depth.approx_quantile(0.5).to_string(),
        pt.cascade_depth.max().to_string(),
        f2(pt.mean_cascade_width),
    ]
}

/// Runs E10 and renders the table.
pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        format!("E10  Self-stabilization under sustained faults (n={})", p.n),
        "transient damage heals even under sustained loss; MTTR grows with the drop rate \
         (knowledge-closure watchdog, Thm 4.3 between faults); casc = causal repair-cascade \
         depth (serial chain) and width (peak parallelism)",
        &[
            "scenario",
            "recovered",
            "mttr p50",
            "mttr p99",
            "mttr max",
            "msgs mean",
            "x steady",
            "dropped",
            "casc p50",
            "casc max",
            "width mean",
        ],
    );
    for pt in measure_drop_matrix(p) {
        t.push_row(point_row(&pt));
    }
    t.push_row(point_row(&measure_burst_partition(p)));
    t.push_row(point_row(&measure_perturbation(p)));
    t
}

/// The scripted sole-carrier loss: `a—b` form a sorted 2-list, `c` is
/// known to nobody's *stored* state — only an in-flight `Lin(c)` hint at
/// `a` carries it. `a` forwards the hint toward `b` without storing
/// (`c` is beyond `a`'s right neighbour), and a one-round total-loss
/// window destroys the forward. Returns the watchdog's report; the
/// verdict must be `PermanentlyDisconnected` with the `a -> b` drop as
/// culprit.
pub fn measure_disconnect_demo() -> WatchReport {
    disconnect_demo_with(None)
}

/// The demo body, optionally instrumented with an observation sink (the
/// flight-recorder path): the wiring is identical either way because
/// observers consume no RNG.
fn disconnect_demo_with(sink: Option<Box<dyn Sink>>) -> WatchReport {
    let cfg = ProtocolConfig::default();
    let (a, b, c) = (
        NodeId::from_fraction(0.2),
        NodeId::from_fraction(0.5),
        NodeId::from_fraction(0.8),
    );
    let na = Node::with_state(a, Extended::NegInf, Extended::Fin(b), a, None, cfg);
    let nb = Node::with_state(b, Extended::Fin(a), Extended::PosInf, b, None, cfg);
    let nc = Node::new(c, cfg);
    let mut net = Network::new(vec![na, nb, nc], 3);
    if let Some(sink) = sink {
        net.attach_sink(sink, 1);
    }
    net.preload(a, Message::Lin(c));
    net.attach_faults(FaultPlan::new(7).with_drop(1, 2, 1.0));
    let rep = watch_recovery(&mut net, 50);
    net.detach_faults();
    net.detach_sink();
    rep
}

/// Runs the sole-carrier demo with an anomaly-armed flight recorder
/// dumping to `path`, and returns the watchdog's report. The
/// `PermanentlyDisconnected` verdict trips the recorder's auto-dump, so
/// after this returns `path` holds a JSONL post-mortem — the recent
/// event ring ending in the fault, span, cascade and verdict records,
/// with the culprit drop named in the verdict detail ("sole carrier").
/// This is the CI fault-matrix artifact.
pub fn write_post_mortem(path: impl Into<std::path::PathBuf>) -> WatchReport {
    let (recorder, _buffer) = FlightRecorder::new(512);
    disconnect_demo_with(Some(Box::new(recorder.with_dump_path(path))))
}

/// Renders the sole-carrier demo as its own small table.
pub fn run_disconnect_demo() -> Table {
    let rep = measure_disconnect_demo();
    let mut t = Table::new(
        "E10b  Sole-carrier loss is non-recoverable (knowledge closure)",
        "no protocol rule invents an identifier: dropping the only message carrying one \
         disconnects the knowledge graph permanently, and the watchdog names the drop",
        &["scenario", "verdict", "root cause"],
    );
    let cause = match &rep.verdict {
        Verdict::PermanentlyDisconnected {
            culprit: Some(c), ..
        } => format!(
            "round {}: {:?} from {:?} to {:?}",
            c.round, c.msg, c.src, c.dest
        ),
        Verdict::PermanentlyDisconnected { culprit: None, .. } => "unidentified".to_string(),
        other => format!("unexpected: {other:?}"),
    };
    t.push_row(vec![
        "sole-carrier Lin drop (3 nodes)".to_string(),
        rep.verdict.outcome().to_string(),
        cause,
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        let mut p = Params::quick();
        p.n = 32;
        p.trials = 4;
        p.budget = 20_000;
        p
    }

    #[test]
    fn mttr_grows_with_the_sustained_drop_rate() {
        let p = Params::quick();
        let pts = measure_drop_matrix(&p);
        for pt in &pts {
            assert_eq!(
                pt.recovered, pt.trials,
                "{}: survivors keep their pointers to the victims, so \
                 every trial must recover",
                pt.label
            );
            // Every arm crashed nodes, so every arm destroyed their mail.
            assert!(pt.mean_dropped > 0.0, "{}: crash queue loss", pt.label);
            // (−1: the fault round itself is consumed before the watch.)
            assert!(
                pt.mttr.max() >= p.down_for - 1,
                "{}: victims were down {} rounds; MTTR max {} cannot be shorter",
                pt.label,
                p.down_for,
                pt.mttr.max()
            );
            // The sink in run_trial makes the causal tracer live, so
            // every trial contributes a cascade-shape sample.
            assert_eq!(
                pt.cascade_depth.count(),
                pt.trials as u64,
                "{}: one cascade depth sample per trial",
                pt.label
            );
            // Re-integrating blank survivors is a multi-hop exchange:
            // the repair DAG cannot be all roots.
            assert!(
                pt.cascade_depth.max() >= 1,
                "{}: repair involved caused messages",
                pt.label
            );
            assert!(
                pt.mean_cascade_width >= 1.0,
                "{}: cascade width is at least one delivery",
                pt.label
            );
        }
        let first = pts.first().expect("at least one rate");
        let last = pts.last().expect("at least one rate");
        assert!(
            first.mttr.mean() < last.mttr.mean(),
            "MTTR must grow from p={} ({:.2}) to p={} ({:.2})",
            p.drop_rates[0],
            first.mttr.mean(),
            p.drop_rates[p.drop_rates.len() - 1],
            last.mttr.mean()
        );
    }

    #[test]
    fn partition_burst_blocks_seam_repair_for_the_whole_window() {
        let p = tiny();
        let pt = measure_burst_partition(&p);
        assert_eq!(pt.recovered, pt.trials, "{pt:?}");
        // The crashed cut node's successor is across the cut; its
        // advertisements die until the window closes, so *every* trial
        // waits out the burst.
        // (−1: the fault round itself is consumed before the watch.)
        assert!(
            pt.min_mttr >= p.partition_len - 1,
            "a trial beat the {}-round burst: fastest MTTR {}",
            p.partition_len,
            pt.min_mttr
        );
    }

    #[test]
    fn perturbation_is_cheap_recoverable_damage() {
        let p = tiny();
        let pt = measure_perturbation(&p);
        assert_eq!(pt.recovered, pt.trials, "{pt:?}");
        // Interior scrambles heal in a round or two; a hit extremum
        // needs a ring-edge bootstrap cycle on top. Either way, far
        // below the budget and the crash scenarios' down time.
        assert!(
            pt.mttr.max() <= 500,
            "scrambled pointers took {} rounds to heal",
            pt.mttr.max()
        );
        assert!(
            pt.min_mttr <= 4,
            "some interior-only trial should heal within a round or two, \
             fastest was {}",
            pt.min_mttr
        );
        assert!(pt.mean_dropped == 0.0, "perturbation destroys no messages");
    }

    #[test]
    fn disconnect_demo_names_the_culprit() {
        let rep = measure_disconnect_demo();
        match rep.verdict {
            Verdict::PermanentlyDisconnected {
                culprit: Some(c), ..
            } => {
                assert_eq!(c.src, NodeId::from_fraction(0.2));
                assert_eq!(c.dest, NodeId::from_fraction(0.5));
                assert_eq!(c.msg, Message::Lin(NodeId::from_fraction(0.8)));
            }
            other => panic!("expected a named sole-carrier culprit, got {other:?}"),
        }
    }

    #[test]
    fn tables_render() {
        let mut p = tiny();
        p.trials = 2;
        p.drop_rates = vec![0.0, 0.1];
        let table = run(&p).render();
        assert!(table.contains("E10"));
        assert!(table.contains("casc p50"), "{table}");
        let demo = run_disconnect_demo().render();
        assert!(demo.contains("disconnected"), "{demo}");
        assert!(demo.contains("root cause"), "{demo}");
    }

    #[test]
    fn post_mortem_dump_names_the_culprit() {
        let dir = std::env::temp_dir().join("swn_e10_postmortem_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("postmortem.jsonl");
        let _ = std::fs::remove_file(&path);
        let rep = write_post_mortem(&path);
        assert_eq!(rep.verdict.outcome(), "disconnected");
        let dump = std::fs::read_to_string(&path).expect("anomaly auto-dumped the ring");
        assert!(dump.contains("sole carrier"), "culprit named: {dump}");
        // The dump is the full recent-event ring, ending in the verdict:
        // span and cascade records are already inside it.
        assert!(dump.contains("\"Cascade\""), "cascade record present");
        assert!(dump.contains("\"Verdict\""), "verdict record present");
        for line in dump.lines() {
            swn_sim::obs::parse_record(line).expect("every dumped line parses");
        }
        let _ = std::fs::remove_file(&path);
    }
}
