//! Phase predicates of the convergence analysis (Section IV).
//!
//! The proof splits stabilization into four phases, each with a property
//! that, once established, holds in every later state:
//!
//! 1. **Connectivity** (Theorem 4.3): LCC is weakly connected and probing
//!    stops adding edges;
//! 2. **Linearization** (Theorem 4.9, Definition 4.8): LCP solves the
//!    sorted-list problem;
//! 3. **Ring** (Theorem 4.18, Definition 4.17): RCP solves the sorted-ring
//!    problem;
//! 4. **Small world** (Theorem 4.22): CP is the ring plus one long-range
//!    link per node whose lengths follow the 1-harmonic distribution.
//!
//! Phases 1–3 are decidable predicates on a snapshot, implemented here.
//! Phase 4 is a distributional statement; its *structural* part (every
//! long-range link live on the ring) is checked here, the distributional
//! part is measured by `swn-topology`'s harmonic-fit statistics.

//! Every predicate exists in two spellings: the historical one over a
//! cloned [`Snapshot`] and a `_view` one over a borrowing
//! [`NetView`](crate::views::NetView). The snapshot spellings delegate to
//! the view spellings through [`Snapshot::as_view`], so there is exactly
//! one implementation of each phase property and the measurement loop can
//! run it without cloning the network.

use crate::id::Extended;
use crate::node::Node;
use crate::views::{NetView, Snapshot, View};

/// Simple union-find over `0..n`, used for weak-connectivity checks.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        let n32 = u32::try_from(n).expect("too many nodes for UnionFind");
        UnionFind {
            parent: (0..n32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    /// Merges the components of `a` and `b`; returns true if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = u32::try_from(hi).expect("UnionFind index fits u32");
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// True when everything is in one component (or `n ≤ 1`).
    pub fn all_connected(&self) -> bool {
        self.components <= 1
    }
}

/// True iff the given view of the state is weakly connected (edge
/// directions ignored). The empty and singleton networks count as
/// connected.
pub fn weakly_connected_view(v: &NetView<'_>, view: View) -> bool {
    let n = v.len();
    if n <= 1 {
        return true;
    }
    let mut uf = UnionFind::new(n);
    v.for_each_edge(view, |a, b| {
        uf.union(a, b);
    });
    uf.all_connected()
}

/// Snapshot spelling of [`weakly_connected_view`].
pub fn weakly_connected(s: &Snapshot, view: View) -> bool {
    weakly_connected_view(&s.as_view(), view)
}

/// A weak-component label for every node rank under `view` (edge
/// directions ignored): two ranks share a label iff they are weakly
/// connected. Labels are union-find roots — stable within one call,
/// not across calls. The fault watchdog uses this to locate which side
/// of a permanent disconnection a dropped payload belonged to.
pub fn component_labels_view(v: &NetView<'_>, view: View) -> Vec<usize> {
    let mut uf = UnionFind::new(v.len());
    v.for_each_edge(view, |a, b| {
        uf.union(a, b);
    });
    (0..v.len()).map(|i| uf.find(i)).collect()
}

/// Definition 4.8: LCP solves the **sorted-list problem** — consecutive
/// nodes (by id) point at each other, extremal nodes carry the `±∞`
/// sentinels, and no other `l`/`r` links exist. The view is already in
/// ascending id order, so this is a single O(n) scan.
pub fn is_sorted_list_view(v: &NetView<'_>) -> bool {
    let nodes = v.nodes();
    let n = nodes.len();
    if n == 0 {
        return true;
    }
    for (pos, node) in nodes.iter().enumerate() {
        let want_l = if pos == 0 {
            Extended::NegInf
        } else {
            Extended::Fin(nodes[pos - 1].id())
        };
        let want_r = if pos + 1 == n {
            Extended::PosInf
        } else {
            Extended::Fin(nodes[pos + 1].id())
        };
        if node.left() != want_l || node.right() != want_r {
            return false;
        }
    }
    true
}

/// Snapshot spelling of [`is_sorted_list_view`].
pub fn is_sorted_list(s: &Snapshot) -> bool {
    is_sorted_list_view(&s.as_view())
}

/// Definition 4.17: RCP solves the **sorted-ring problem** — the sorted
/// list plus mutually closing ring edges at the extremes. A single node
/// trivially satisfies it; two or more nodes need `min.ring = max` and
/// `max.ring = min`.
pub fn is_sorted_ring_view(v: &NetView<'_>) -> bool {
    if !is_sorted_list_view(v) {
        return false;
    }
    let nodes = v.nodes();
    if nodes.len() <= 1 {
        return true;
    }
    let min = nodes[0];
    let max = nodes[nodes.len() - 1];
    min.ring() == Some(max.id()) && max.ring() == Some(min.id())
}

/// Snapshot spelling of [`is_sorted_ring_view`].
pub fn is_sorted_ring(s: &Snapshot) -> bool {
    is_sorted_ring_view(&s.as_view())
}

/// The sorted ring **modulo its declared flicker**: the `l`/`r`/`ring`
/// pointer structure is exactly the sorted ring, and every in-flight
/// message belongs to the chatter a stable ring perpetually generates —
/// the long-range token walk (`inclrl`/`reslrl`, which moves `lrl` and
/// `age` forever by design), probes (monotone no-ops on a perfect ring),
/// neighbour re-advertisements (`lin(x)` addressed to a node that
/// already stores `x`, or the dying echo `lin(d)` addressed to `d`
/// itself), and the extremal pair's ring-edge refresh (`ring`/`resring`
/// carrying one extremum to the other). This is the closure-mode
/// invariant: stronger than [`is_sorted_ring_view`] (which says nothing
/// about channels), it pins down *which* flicker the stable region is
/// allowed to sustain — anything else in flight means the ring is still
/// digesting a repair and the configuration is not stable.
pub fn is_ring_stable_config_view(v: &NetView<'_>) -> bool {
    use crate::message::Message;
    if !is_sorted_ring_view(v) {
        return false;
    }
    let nodes = v.nodes();
    let n = nodes.len();
    if n == 0 {
        return true;
    }
    let min_id = nodes[0].id();
    let max_id = nodes[n - 1].id();
    for (i, node) in nodes.iter().enumerate() {
        let d = node.id();
        for m in v.channel(i) {
            let benign = match *m {
                Message::IncLrl(_)
                | Message::ResLrl(..)
                | Message::ProbR(_)
                | Message::ProbL(_) => true,
                Message::Lin(x) => {
                    x == d || Extended::Fin(x) == node.left() || Extended::Fin(x) == node.right()
                }
                Message::Ring(x) => (d == max_id && x == min_id) || (d == min_id && x == max_id),
                Message::ResRing(x) => (d == min_id && x == max_id) || (d == max_id && x == min_id),
            };
            if !benign {
                return false;
            }
        }
    }
    true
}

/// Snapshot spelling of [`is_ring_stable_config_view`].
pub fn is_ring_stable_config(s: &Snapshot) -> bool {
    is_ring_stable_config_view(&s.as_view())
}

/// Structural part of the small-world state (Theorem 4.22): the sorted
/// ring holds and every long-range link points at an existing node
/// (the distributional part is measured separately).
pub fn is_small_world_structure_view(v: &NetView<'_>) -> bool {
    is_sorted_ring_view(v) && v.nodes().iter().all(|n| v.index_of(n.lrl()).is_some())
}

/// Snapshot spelling of [`is_small_world_structure_view`].
pub fn is_small_world_structure(s: &Snapshot) -> bool {
    is_small_world_structure_view(&s.as_view())
}

/// The stabilization phase a snapshot has reached (each phase implies the
/// previous ones; phase 4's distributional part is not checked here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    /// CC not even weakly connected — unrecoverable by Theorem 4.3's
    /// hypothesis (should never happen from a legal initial state).
    Disconnected,
    /// Weakly connected, but LCC is not.
    Connected,
    /// Phase 1 done: LCC weakly connected.
    LccConnected,
    /// Phase 2 done: LCP is the sorted list.
    SortedList,
    /// Phase 3 done: RCP is the sorted ring.
    SortedRing,
}

/// Classifies a borrowed view into the highest phase it satisfies.
///
/// Fast path: when the sorted list already holds (an O(n) allocation-free
/// scan) the two union-find passes are skipped entirely — LCP being the
/// path over all nodes makes LCC (and hence CC) weakly connected, so the
/// answer is `SortedList` or `SortedRing`. Stabilized networks spend most
/// measured rounds in exactly that state, which is where the classifier
/// runs hottest.
pub fn classify_view(v: &NetView<'_>) -> Phase {
    if is_sorted_list_view(v) {
        return if is_sorted_ring_view(v) {
            Phase::SortedRing
        } else {
            Phase::SortedList
        };
    }
    if !weakly_connected_view(v, View::Cc) {
        return Phase::Disconnected;
    }
    if !weakly_connected_view(v, View::Lcc) {
        return Phase::Connected;
    }
    Phase::LccConnected
}

/// Classifies a snapshot into the highest phase it satisfies.
pub fn classify(s: &Snapshot) -> Phase {
    classify_view(&s.as_view())
}

/// Builds the canonical stable state for a set of nodes: the sorted ring
/// with every long-range token at its origin. Used as the reference state
/// in tests, benchmarks and the "start from stable" experiments.
pub fn make_sorted_ring(
    ids: &[crate::id::NodeId],
    cfg: crate::config::ProtocolConfig,
) -> Vec<Node> {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let l = if i == 0 {
                Extended::NegInf
            } else {
                Extended::Fin(sorted[i - 1])
            };
            let r = if i + 1 == n {
                Extended::PosInf
            } else {
                Extended::Fin(sorted[i + 1])
            };
            let ring = if n >= 2 && i == 0 {
                Some(sorted[n - 1])
            } else if n >= 2 && i + 1 == n {
                Some(sorted[0])
            } else {
                None
            };
            Node::with_state(id, l, r, id, ring, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::id::{evenly_spaced_ids, NodeId};

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn ring_snapshot(n: usize) -> Snapshot {
        let ids = evenly_spaced_ids(n);
        Snapshot::from_nodes(make_sorted_ring(&ids, ProtocolConfig::default()))
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(3, 4);
        uf.union(2, 3);
        assert!(uf.all_connected());
    }

    #[test]
    fn canonical_ring_satisfies_all_phases() {
        for n in [1usize, 2, 3, 10, 64] {
            let s = ring_snapshot(n);
            assert!(is_sorted_list(&s), "n={n} sorted list");
            assert!(is_sorted_ring(&s), "n={n} sorted ring");
            assert!(is_small_world_structure(&s), "n={n} small world");
            assert_eq!(classify(&s), Phase::SortedRing, "n={n}");
        }
    }

    #[test]
    fn broken_list_detected() {
        let ids = evenly_spaced_ids(5);
        let mut nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        // Corrupt one right pointer: skip the next node.
        let far = nodes[3].id();
        nodes[1] = Node::with_state(
            nodes[1].id(),
            nodes[1].left(),
            Extended::Fin(far),
            nodes[1].id(),
            None,
            ProtocolConfig::default(),
        );
        let s = Snapshot::from_nodes(nodes);
        assert!(!is_sorted_list(&s));
        assert!(!is_sorted_ring(&s));
        assert!(classify(&s) < Phase::SortedList);
    }

    #[test]
    fn missing_ring_edge_detected() {
        let ids = evenly_spaced_ids(4);
        let mut nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let min_id = nodes[0].id();
        nodes[0] = Node::with_state(
            min_id,
            Extended::NegInf,
            nodes[0].right(),
            min_id,
            None, // ring edge missing
            ProtocolConfig::default(),
        );
        let s = Snapshot::from_nodes(nodes);
        assert!(is_sorted_list(&s));
        assert!(!is_sorted_ring(&s));
        assert_eq!(classify(&s), Phase::SortedList);
    }

    #[test]
    fn dangling_lrl_breaks_small_world_structure() {
        let ids = evenly_spaced_ids(4);
        let mut nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        // lrl pointing at an id that is not in the network.
        nodes[2] = Node::with_state(
            nodes[2].id(),
            nodes[2].left(),
            nodes[2].right(),
            id(0.987654),
            None,
            ProtocolConfig::default(),
        );
        let s = Snapshot::from_nodes(nodes);
        assert!(is_sorted_ring(&s));
        assert!(!is_small_world_structure(&s));
    }

    #[test]
    fn two_components_are_disconnected() {
        let cfg = ProtocolConfig::default();
        let mut nodes = make_sorted_ring(&[id(0.1), id(0.2)], cfg);
        nodes.extend(make_sorted_ring(&[id(0.7), id(0.8)], cfg));
        let s = Snapshot::from_nodes(nodes);
        assert!(!weakly_connected(&s, View::Cc));
        assert_eq!(classify(&s), Phase::Disconnected);
        assert!(!is_sorted_list(&s), "l/r pointers skip across components");
    }

    #[test]
    fn lrl_only_connectivity_is_connected_but_not_lcc() {
        let cfg = ProtocolConfig::default();
        // Two sorted pairs connected solely by one lrl.
        let mut nodes = make_sorted_ring(&[id(0.1), id(0.2)], cfg);
        nodes.extend(make_sorted_ring(&[id(0.7), id(0.8)], cfg));
        nodes[0] = Node::with_state(
            id(0.1),
            Extended::NegInf,
            Extended::Fin(id(0.2)),
            id(0.8), // lrl bridges the components
            Some(id(0.2)),
            cfg,
        );
        let s = Snapshot::from_nodes(nodes);
        assert!(weakly_connected(&s, View::Cc));
        assert!(!weakly_connected(&s, View::Lcc));
        assert_eq!(classify(&s), Phase::Connected);
    }

    #[test]
    fn empty_and_singleton_networks_are_stable() {
        let s = Snapshot::from_nodes(vec![]);
        assert_eq!(classify(&s), Phase::SortedRing);
        let s = ring_snapshot(1);
        assert_eq!(classify(&s), Phase::SortedRing);
    }

    #[test]
    fn make_sorted_ring_dedups_and_sorts() {
        let nodes = make_sorted_ring(
            &[id(0.5), id(0.1), id(0.5), id(0.9)],
            ProtocolConfig::default(),
        );
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].id(), id(0.1));
        assert_eq!(nodes[2].ring(), Some(id(0.1)));
    }

    /// Long-form classification without the sorted-list fast path, used
    /// as the reference the fast path must agree with.
    fn classify_slow(s: &Snapshot) -> Phase {
        let v = s.as_view();
        if !weakly_connected_view(&v, View::Cc) {
            return Phase::Disconnected;
        }
        if !weakly_connected_view(&v, View::Lcc) {
            return Phase::Connected;
        }
        if !is_sorted_list_view(&v) {
            return Phase::LccConnected;
        }
        if !is_sorted_ring_view(&v) {
            return Phase::SortedList;
        }
        Phase::SortedRing
    }

    #[test]
    fn classify_fast_path_matches_long_form() {
        let cfg = ProtocolConfig::default();
        let mut states: Vec<Snapshot> = vec![
            Snapshot::from_nodes(vec![]),
            ring_snapshot(1),
            ring_snapshot(2),
            ring_snapshot(17),
        ];
        // Sorted list without the ring edges.
        let ids = evenly_spaced_ids(6);
        let mut nodes = make_sorted_ring(&ids, cfg);
        let min_id = nodes[0].id();
        nodes[0] = Node::with_state(
            min_id,
            Extended::NegInf,
            nodes[0].right(),
            min_id,
            None,
            cfg,
        );
        states.push(Snapshot::from_nodes(nodes));
        // Two components, with and without an lrl bridge.
        let mut split = make_sorted_ring(&[id(0.1), id(0.2)], cfg);
        split.extend(make_sorted_ring(&[id(0.7), id(0.8)], cfg));
        states.push(Snapshot::from_nodes(split.clone()));
        split[0] = Node::with_state(
            id(0.1),
            Extended::NegInf,
            Extended::Fin(id(0.2)),
            id(0.8),
            Some(id(0.2)),
            cfg,
        );
        states.push(Snapshot::from_nodes(split));
        for s in &states {
            assert_eq!(classify(s), classify_slow(s));
            assert_eq!(classify_view(&s.as_view()), classify_slow(s));
        }
    }

    #[test]
    fn view_predicates_agree_with_snapshot_predicates() {
        for n in [1usize, 2, 5, 33] {
            let s = ring_snapshot(n);
            let v = s.as_view();
            assert_eq!(is_sorted_list_view(&v), is_sorted_list(&s));
            assert_eq!(is_sorted_ring_view(&v), is_sorted_ring(&s));
            assert_eq!(
                is_small_world_structure_view(&v),
                is_small_world_structure(&s)
            );
            assert!(weakly_connected_view(&v, View::Cc), "n={n}");
        }
    }

    #[test]
    fn phases_are_totally_ordered() {
        assert!(Phase::Disconnected < Phase::Connected);
        assert!(Phase::Connected < Phase::LccConnected);
        assert!(Phase::LccConnected < Phase::SortedList);
        assert!(Phase::SortedList < Phase::SortedRing);
    }
}
