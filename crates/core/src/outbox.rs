//! The effect buffer connecting the pure protocol logic to a transport.
//!
//! Every action handler (Algorithms 1–10) is a pure state transition that
//! *emits* sends into an [`Outbox`] instead of performing I/O. The
//! simulator, the threaded runtime and the unit tests all drive the same
//! handlers and differ only in how they drain the outbox. Handlers also
//! emit [`ProtocolEvent`]s — structured observations (probe repairs, token
//! moves, forgets, resets) that the analysis layer counts without having
//! to reverse-engineer them from message traffic.

use crate::id::{Extended, NodeId};
use crate::message::Message;

/// Which neighbour variable an event refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The `p.l` variable.
    Left,
    /// The `p.r` variable.
    Right,
}

/// Structured observations emitted by the protocol handlers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ProtocolEvent {
    /// A probe (or the probe-originating check in Algorithm 10) failed to
    /// make progress and fell through to `linearize`, creating an edge.
    /// Phase 1 is complete exactly when these stop occurring (Theorem 4.3).
    ProbeRepair {
        /// Node at which the probe got stuck.
        at: NodeId,
        /// The probe's destination (the missing link's endpoint).
        dest: NodeId,
    },
    /// The long-range token moved to a neighbour of its previous endpoint
    /// (Algorithm 4, move step).
    LrlMoved {
        /// Previous endpoint.
        from: NodeId,
        /// New endpoint.
        to: NodeId,
    },
    /// The long-range link was forgotten: the token returned to its origin
    /// (Algorithm 4, forget step). Carries the age at which it happened.
    LrlForgotten {
        /// The link's age when it was forgotten.
        age: u64,
    },
    /// A node adopted a new left/right neighbour (`p.l`/`p.r` assignment
    /// in Algorithm 2).
    NeighborAdopted {
        /// Which neighbour variable changed.
        side: Side,
        /// The displaced value (forwarded onward, never dropped).
        old: Extended,
        /// The adopted neighbour.
        new: NodeId,
    },
    /// The bootstrap/recovery rule reset an invalid `p.ring` (DESIGN.md
    /// deviation #3).
    RingReset {
        /// The new ring target (`None` when no neighbour was available).
        to: Option<NodeId>,
    },
    /// The sanitation rule salvaged an ill-typed stored pointer (e.g. a
    /// left neighbour larger than the node) by re-injecting it into the
    /// linearization process instead of dropping it.
    PointerSalvaged {
        /// The identifier rescued from the ill-typed slot.
        value: NodeId,
    },
}

/// Buffer of sends and events produced by one action execution.
#[derive(Default, Debug)]
pub struct Outbox {
    sends: Vec<(NodeId, Message)>,
    events: Vec<ProtocolEvent>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message for `dest`.
    #[inline]
    pub fn send(&mut self, dest: NodeId, msg: Message) {
        self.sends.push((dest, msg));
    }

    /// Records a structured observation.
    #[inline]
    pub fn event(&mut self, ev: ProtocolEvent) {
        self.events.push(ev);
    }

    /// The queued sends.
    pub fn sends(&self) -> &[(NodeId, Message)] {
        &self.sends
    }

    /// The recorded events.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Drains the queued sends (events stay until [`clear`](Self::clear)).
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (NodeId, Message)> {
        self.sends.drain(..)
    }

    /// Drains the recorded events.
    pub fn drain_events(&mut self) -> std::vec::Drain<'_, ProtocolEvent> {
        self.events.drain(..)
    }

    /// Empties the buffer without yielding anything.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.events.clear();
    }

    /// True when neither sends nor events are queued.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(id(0.1), Message::Lin(id(0.2)));
        out.send(id(0.3), Message::Ring(id(0.4)));
        out.event(ProtocolEvent::LrlForgotten { age: 7 });
        assert_eq!(out.sends().len(), 2);
        assert_eq!(out.sends()[0].0, id(0.1));
        assert_eq!(out.sends()[1].1, Message::Ring(id(0.4)));
        assert_eq!(out.events(), &[ProtocolEvent::LrlForgotten { age: 7 }]);
        assert!(!out.is_empty());
    }

    #[test]
    fn drain_empties_sends_only() {
        let mut out = Outbox::new();
        out.send(id(0.1), Message::Lin(id(0.2)));
        out.event(ProtocolEvent::RingReset { to: None });
        let drained: Vec<_> = out.drain_sends().collect();
        assert_eq!(drained.len(), 1);
        assert!(out.sends().is_empty());
        assert_eq!(out.events().len(), 1);
        out.clear();
        assert!(out.is_empty());
    }
}
