//! Clustering coefficients (Watts–Strogatz's C).
//!
//! The local clustering coefficient of a node is the fraction of pairs of
//! its neighbours that are themselves adjacent; C is the mean over nodes
//! with degree ≥ 2. Computed on the symmetrized simple graph.

use crate::graph::Graph;

/// Local clustering coefficient of `u` in the (already undirected,
/// deduplicated) graph. Nodes with fewer than two neighbours have
/// coefficient 0 by convention.
pub fn local_clustering(und: &Graph, u: usize) -> f64 {
    let nbrs = und.neighbors(u);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if und.neighbors(nbrs[i] as usize).contains(&nbrs[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Average clustering coefficient over nodes of degree ≥ 2 (the
/// convention of Watts–Strogatz; isolated and degree-1 nodes are
/// excluded from the average).
pub fn average_clustering(g: &Graph) -> f64 {
    let und = g.undirected_view();
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for u in 0..und.n() {
        if und.out_degree(u) >= 2 {
            sum += local_clustering(&und, u);
            cnt += 1;
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn square_with_one_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: triangles 012 and 023.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let und = g.undirected_view();
        // Node 1: neighbours {0,2}, edge 0-2 exists → 1.0
        assert!((local_clustering(&und, 1) - 1.0).abs() < 1e-12);
        // Node 0: neighbours {1,2,3}; pairs (1,2),(1,3),(2,3): present 1-2? yes; 2-3 yes; 1-3 no → 2/3
        assert!((local_clustering(&und, 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ring_lattice_k4_clustering() {
        // The classic WS substrate: ring of n nodes each linked to the 2
        // nearest on each side has C = 0.5 (for k=4: 3 closed of 6 pairs).
        let n = 20;
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
            g.add_edge(i, (i + 2) % n);
        }
        let c = average_clustering(&g);
        assert!((c - 0.5).abs() < 1e-9, "C(ring,k=4) = {c}, expected 0.5");
    }

    #[test]
    fn pure_cycle_has_zero_clustering() {
        let edges: Vec<_> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = Graph::from_edges(10, &edges);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
