//! The long-range link: `respondlrl` (Algorithm 3) and `move-forget`
//! (Algorithm 4).
//!
//! Every node owns one long-range *token* that performs a lazy random walk
//! over the ring. Each round the node announces the token's position to
//! its current endpoint (`inclrl`); the endpoint answers with its own two
//! ring neighbours (`reslrl`); the owner then *moves* the token to one of
//! them uniformly at random and *forgets* it (resets it to the origin)
//! with the age-dependent probability φ(α). Chaintreau et al. [4] prove
//! the stationary distribution of the token's displacement is the
//! k-harmonic distribution — exactly the Kleinberg link distribution that
//! makes greedy routing polylogarithmic.

use crate::forget::phi;
use crate::id::{Extended, NodeId};
use crate::message::Message;
use crate::node::Node;
use crate::outbox::{Outbox, ProtocolEvent};
use rand::{Rng, RngExt as _};

impl Node {
    /// `respondlrl(id)` — Algorithm 3. We are the endpoint of `origin`'s
    /// long-range link; answer with our left and right ring neighbours so
    /// the owner can move its token.
    ///
    /// At the ring seam the missing neighbour is substituted by our ring
    /// edge: the maximum node's "right" neighbour is the minimum node and
    /// vice versa, so the token walks a true cycle. (The paper's third
    /// branch contains a typo — it answers `(p.ring, p.l)` with
    /// `p.l = −∞` — which we correct to `(p.ring, p.r)` by symmetry with
    /// the second branch; DESIGN.md deviation #1.)
    pub(crate) fn respond_lrl(&mut self, origin: NodeId, out: &mut Outbox) {
        let ring = self
            .valid_ring()
            .map(Extended::Fin)
            .unwrap_or(match (self.l, self.r) {
                // No usable ring edge yet: expose the gap as a sentinel so
                // move-forget simply takes the other side.
                (Extended::NegInf, _) => Extended::NegInf,
                _ => Extended::PosInf,
            });
        let (id1, id2) = match (self.l, self.r) {
            (Extended::Fin(l), Extended::Fin(r)) => (Extended::Fin(l), Extended::Fin(r)),
            (Extended::Fin(l), Extended::PosInf) => (Extended::Fin(l), ring),
            (Extended::NegInf, Extended::Fin(r)) => (ring, Extended::Fin(r)),
            // Isolated (nothing useful to say) or ill-typed sentinels
            // (sanitize repairs them at the next action).
            _ => return,
        };
        out.send(origin, Message::ResLrl(id1, id2));
    }

    /// `move-forget(id1, id2)` — Algorithm 4. Move the token to one of the
    /// two candidates (uniformly when both exist), then forget it with
    /// probability φ(age).
    pub(crate) fn move_forget<R: Rng + ?Sized>(
        &mut self,
        id1: Extended,
        id2: Extended,
        rng: &mut R,
        out: &mut Outbox,
    ) {
        let next = match (id1.fin(), id2.fin()) {
            (Some(a), Some(b)) => Some(if rng.random_bool(0.5) { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        if let Some(n) = next {
            if n != self.lrl {
                out.event(ProtocolEvent::LrlMoved {
                    from: self.lrl,
                    to: n,
                });
            }
            self.lrl = n;
        }
        let p_forget = phi(self.age, self.config().epsilon);
        if p_forget > 0.0 && rng.random::<f64>() < p_forget {
            out.event(ProtocolEvent::LrlForgotten { age: self.age });
            self.lrl = self.id();
            self.age = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn node(l: Option<f64>, me: f64, r: Option<f64>, ring: Option<f64>) -> Node {
        Node::with_state(
            id(me),
            l.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::NegInf),
            r.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::PosInf),
            id(me),
            ring.map(id),
            ProtocolConfig::default(),
        )
    }

    #[test]
    fn interior_node_answers_both_neighbours() {
        let mut n = node(Some(0.3), 0.5, Some(0.7), None);
        let mut out = Outbox::new();
        n.respond_lrl(id(0.1), &mut out);
        assert_eq!(
            out.sends(),
            &[(
                id(0.1),
                Message::ResLrl(Extended::Fin(id(0.3)), Extended::Fin(id(0.7)))
            )]
        );
    }

    #[test]
    fn max_node_answers_ring_as_right_neighbour() {
        let mut n = node(Some(0.7), 0.9, None, Some(0.1));
        let mut out = Outbox::new();
        n.respond_lrl(id(0.5), &mut out);
        assert_eq!(
            out.sends(),
            &[(
                id(0.5),
                Message::ResLrl(Extended::Fin(id(0.7)), Extended::Fin(id(0.1)))
            )]
        );
    }

    #[test]
    fn min_node_answers_ring_as_left_neighbour() {
        // DESIGN.md deviation #1: (p.ring, p.r), not the paper's (p.ring, p.l).
        let mut n = node(None, 0.1, Some(0.3), Some(0.9));
        let mut out = Outbox::new();
        n.respond_lrl(id(0.5), &mut out);
        assert_eq!(
            out.sends(),
            &[(
                id(0.5),
                Message::ResLrl(Extended::Fin(id(0.9)), Extended::Fin(id(0.3)))
            )]
        );
    }

    #[test]
    fn min_node_without_ring_answers_sentinel() {
        let mut n = node(None, 0.1, Some(0.3), None);
        let mut out = Outbox::new();
        n.respond_lrl(id(0.5), &mut out);
        assert_eq!(
            out.sends(),
            &[(
                id(0.5),
                Message::ResLrl(Extended::NegInf, Extended::Fin(id(0.3)))
            )]
        );
    }

    #[test]
    fn isolated_node_stays_silent() {
        let mut n = node(None, 0.5, None, None);
        let mut out = Outbox::new();
        n.respond_lrl(id(0.1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn move_takes_the_only_candidate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut n = node(Some(0.3), 0.5, Some(0.7), None);
        let mut out = Outbox::new();
        n.move_forget(Extended::Fin(id(0.8)), Extended::PosInf, &mut rng, &mut out);
        assert_eq!(n.lrl(), id(0.8));
        n.move_forget(Extended::NegInf, Extended::Fin(id(0.2)), &mut rng, &mut out);
        assert_eq!(n.lrl(), id(0.2));
    }

    #[test]
    fn move_with_no_candidates_keeps_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut n = node(Some(0.3), 0.5, Some(0.7), None);
        let mut out = Outbox::new();
        n.move_forget(Extended::NegInf, Extended::PosInf, &mut rng, &mut out);
        assert_eq!(n.lrl(), id(0.5));
        assert!(out.events().is_empty());
    }

    #[test]
    fn move_is_roughly_unbiased_between_two_candidates() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut left = 0u32;
        const TRIALS: u32 = 10_000;
        for _ in 0..TRIALS {
            let mut n = node(Some(0.3), 0.5, Some(0.7), None);
            let mut out = Outbox::new();
            n.move_forget(
                Extended::Fin(id(0.2)),
                Extended::Fin(id(0.8)),
                &mut rng,
                &mut out,
            );
            if n.lrl() == id(0.2) {
                left += 1;
            }
        }
        let frac = left as f64 / TRIALS as f64;
        assert!(
            (0.47..0.53).contains(&frac),
            "move step biased: left fraction {frac}"
        );
    }

    #[test]
    fn young_token_never_forgotten() {
        // age ≤ 2 ⇒ φ = 0 ⇒ the token survives regardless of randomness.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let mut n = node(Some(0.3), 0.5, Some(0.7), None);
            // age stays 0 (we never run the regular action here)
            let mut out = Outbox::new();
            n.move_forget(Extended::Fin(id(0.8)), Extended::PosInf, &mut rng, &mut out);
            assert_eq!(n.lrl(), id(0.8));
            assert!(!out
                .events()
                .iter()
                .any(|e| matches!(e, ProtocolEvent::LrlForgotten { .. })));
        }
    }

    #[test]
    fn old_token_eventually_forgotten() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut n = node(Some(0.3), 0.5, Some(0.7), None);
        let mut forgotten = false;
        let mut out = Outbox::new();
        for _ in 0..10_000 {
            n.on_regular(&mut out); // ages the token
            out.clear();
            n.move_forget(Extended::Fin(id(0.8)), Extended::PosInf, &mut rng, &mut out);
            if out
                .events()
                .iter()
                .any(|e| matches!(e, ProtocolEvent::LrlForgotten { .. }))
            {
                forgotten = true;
                assert_eq!(n.lrl(), id(0.5), "token must return to origin");
                assert_eq!(n.age(), 0, "age must reset on forget");
                break;
            }
            out.clear();
        }
        assert!(forgotten, "token never forgotten in 10k rounds");
    }
}
