//! Offline stand-in for the `serde_json` crate.
//!
//! Converts the vendored serde's [`Value`] tree to and from JSON text.
//! Output is compact (no whitespace), fields keep declaration order, and
//! `f64` formatting uses Rust's shortest-round-trip `Display`, so
//! snapshots written here parse back to bit-identical numbers.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text and deserializes a `T` from it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Rust's Display is shortest-round-trip; integral floats
            // print without a fractional part ("1"), which parses back
            // as an integer — the serde impls accept either shape.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

const MAX_DEPTH: u32 = 128;

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shape() {
        let v = Value::Map(vec![
            ("version".to_string(), Value::U64(1)),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::U64(1), Value::Bool(false), Value::Null]),
            ),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s).expect("finite");
        assert_eq!(s, r#"{"version":1,"xs":[1,false,null]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::F64(0.1)),
            ("b".to_string(), Value::I64(-7)),
            ("c".to_string(), Value::Str("q\"uo\\te\n".to_string())),
            ("d".to_string(), Value::Seq(vec![])),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s).expect("finite");
        assert_eq!(parse_value(&s).expect("parses"), v);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, 0.0] {
            let s = to_string(&x).expect("finite");
            let back: f64 = from_str(&s).expect("parses");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {s} → {back}");
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_value("not json").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("{}extra").is_err());
    }

    #[test]
    fn nan_refused() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let v = parse_value(" { \"a\" : [ 1 , 2 ] } ").expect("parses");
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".to_string(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)])
            )])
        );
    }
}
