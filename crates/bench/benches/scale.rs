//! Scale targets for the million-node round engine (DESIGN.md §12):
//! the two end-to-end numbers the active-set scheduler was built for.
//!
//! * **run_to_ring @ 1e5** — wall time to stabilize a corrupted ring of
//!   100 000 nodes under [`ScheduleMode::ActiveSet`]. The corruptions
//!   are local, so after the first full round only their neighbourhoods
//!   stay on the agenda: the run costs O(damage), not
//!   O(rounds × nodes).
//! * **churn soak @ 1e6** — ns/round over a 1000-round window on a
//!   converged ring of 1 000 000 nodes with a sparse join/leave trickle
//!   (one of each every 16 rounds). Between churn events only the churn
//!   neighbourhoods and the in-flight probe-walk frontiers are active,
//!   so the average round cost is dominated by a handful of nodes, not
//!   the million sleepers — `mean_active` records exactly that.
//!
//! The bench emits `BENCH_scale.json` (workspace root, or wherever
//! `SWN_BENCH_OUT` points). `SWN_BENCH_QUICK=1` shrinks both scenarios
//! (1e4 / 2e4 nodes, 200 soak rounds) so CI can smoke-run them; the
//! committed record is always a full run, and the `quick` flag keeps the
//! two modes from being compared against each other.
//!
//! [`ScheduleMode::ActiveSet`]: swn_sim::ScheduleMode::ActiveSet

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::Serialize;
use std::time::Instant;
use swn_core::config::ProtocolConfig;
use swn_core::id::{evenly_spaced_ids, NodeId};
use swn_core::invariants::make_sorted_ring;
use swn_core::message::Message;
use swn_core::node::Node;
use swn_sim::convergence::run_to_ring;
use swn_sim::init::{generate, InitialTopology};
use swn_sim::{Network, ScheduleMode};

fn quick_mode() -> bool {
    std::env::var_os("SWN_BENCH_QUICK").is_some()
}

fn out_path() -> std::path::PathBuf {
    match std::env::var_os("SWN_BENCH_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_scale.json"),
    }
}

/// The stabilization half: a corrupted ring healed under the scheduler.
#[derive(Serialize)]
struct RunToRingEntry {
    n: usize,
    corruptions: usize,
    /// Wall time of the whole `run_to_ring` call, milliseconds.
    wall_ms: f64,
    /// Rounds until the sorted ring re-formed.
    rounds_to_ring: u64,
    /// Messages sent until the ring re-formed.
    messages_to_ring: u64,
}

/// The soak half: a converged ring absorbing a join/leave trickle.
#[derive(Serialize)]
struct ChurnSoakEntry {
    n: usize,
    rounds: u64,
    /// Joins and leaves actually applied inside the window.
    joins: u64,
    leaves: u64,
    /// Average round cost over the window, nanoseconds. Includes the
    /// churn hooks themselves (a leave's staleness sweep is O(n)), so
    /// this is the honest end-to-end number, not a best case.
    ns_per_round: f64,
    /// Mean `active_count` over the window — the number the scheduler
    /// exists for: nodes actually visited per round, against the `n`
    /// sleepers a full scan would walk.
    mean_active: f64,
}

#[derive(Serialize)]
struct ScaleRecord {
    quick: bool,
    run_to_ring: RunToRingEntry,
    churn_soak: ChurnSoakEntry,
}

fn measure_run_to_ring(n: usize, corruptions: usize) -> RunToRingEntry {
    let ids = evenly_spaced_ids(n);
    let seed = 7;
    let mut net = generate(
        InitialTopology::CorruptedRing { corruptions },
        &ids,
        ProtocolConfig::default(),
        seed,
    )
    .into_network(seed);
    net.set_schedule_mode(ScheduleMode::ActiveSet);
    let start = Instant::now();
    let report = run_to_ring(&mut net, 20_000);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.stabilized(),
        "corrupted ring failed to heal: {report:?}"
    );
    RunToRingEntry {
        n,
        corruptions,
        wall_ms,
        rounds_to_ring: report.rounds_to_ring.expect("stabilized"),
        messages_to_ring: report.messages_to_ring,
    }
}

fn measure_churn_soak(n: usize, rounds: u64) -> ChurnSoakEntry {
    let ids = evenly_spaced_ids(n);
    let mut net = Network::new(make_sorted_ring(&ids, ProtocolConfig::default()), 7);
    net.set_schedule_mode(ScheduleMode::ActiveSet);
    // Settle, but don't wait for true quiescence: the initial rounds
    // launch ring-validation probe walks that take ~n O(1) rounds to
    // come home (see the stepengine bench). A couple of full rounds
    // collapse the agenda to the walk frontiers; soaking with the walks
    // in flight is the realistic steady state of a ring this size.
    let mut settle = 0u64;
    while net.active_count() > 8 && settle < 2_000 {
        net.step();
        settle += 1;
    }
    // Shed the settle rounds' stats rows before the timed window.
    drop(net.take_trace());
    // A local membership mirror keeps contact/victim selection O(1) —
    // `Network::ids` would allocate an n-element vector per event.
    let mut live: Vec<NodeId> = ids;
    let mut rng = StdRng::seed_from_u64(13);
    let mut next_join_bits = 1u64;
    let (mut joins, mut leaves, mut active_sum) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for round in 0..rounds {
        if round % 16 == 0 {
            // One join: a fresh odd id announced to a random live node.
            let joiner = NodeId::from_bits(next_join_bits);
            next_join_bits += 2;
            if net.insert_node(Node::new(joiner, ProtocolConfig::default())) {
                let contact = live[rng.random_range(0..live.len())];
                net.send_external(contact, Message::Lin(joiner));
                live.push(joiner);
                joins += 1;
            }
            // One leave: a random live node vanishes without notice.
            let k = rng.random_range(0..live.len());
            let victim = live.swap_remove(k);
            net.remove_node(victim);
            leaves += 1;
        }
        active_sum += net.active_count() as u64;
        net.step();
    }
    let ns_per_round = start.elapsed().as_secs_f64() * 1e9 / rounds as f64;
    ChurnSoakEntry {
        n,
        rounds,
        joins,
        leaves,
        ns_per_round,
        mean_active: active_sum as f64 / rounds as f64,
    }
}

/// Runs both scenarios and emits `BENCH_scale.json`.
fn emit_scale_record(_c: &mut Criterion) {
    let quick = quick_mode();
    let (ring_n, corruptions) = if quick { (10_000, 16) } else { (100_000, 64) };
    let (soak_n, soak_rounds) = if quick {
        (20_000, 200)
    } else {
        (1_000_000, 1_000)
    };

    let run_to_ring = measure_run_to_ring(ring_n, corruptions);
    println!(
        "scale run_to_ring n={}: {:.0} ms wall, {} rounds, {} messages ({} corruptions)",
        run_to_ring.n,
        run_to_ring.wall_ms,
        run_to_ring.rounds_to_ring,
        run_to_ring.messages_to_ring,
        run_to_ring.corruptions,
    );

    let churn_soak = measure_churn_soak(soak_n, soak_rounds);
    println!(
        "scale churn_soak n={}: {:.0} ns/round over {} rounds ({} joins, {} leaves, \
         mean {:.1} active/round)",
        churn_soak.n,
        churn_soak.ns_per_round,
        churn_soak.rounds,
        churn_soak.joins,
        churn_soak.leaves,
        churn_soak.mean_active,
    );

    let record = ScaleRecord {
        quick,
        run_to_ring,
        churn_soak,
    };
    let json = serde_json::to_string(&record).expect("serialize scale record");
    let path = out_path();
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    println!("scale record -> {}", path.display());
}

criterion_group!(benches, emit_scale_record);
criterion_main!(benches);
