//! Shortest paths, diameter and characteristic path length.
//!
//! All distances are hop counts on the symmetrized graph (the small-world
//! literature, including Watts–Strogatz, measures undirected path
//! lengths). Exact all-pairs BFS is used up to a size cutoff; above it a
//! seeded sample of sources gives an unbiased estimate.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::VecDeque;

/// BFS hop distances from `src` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v as usize);
            }
        }
    }
    dist
}

/// Summary of path-length structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStats {
    /// Mean finite pairwise distance (the characteristic path length L).
    pub avg: f64,
    /// Maximal finite pairwise distance (the diameter).
    pub diameter: u32,
    /// Number of (ordered) unreachable pairs encountered.
    pub unreachable_pairs: u64,
}

fn accumulate(g: &Graph, sources: &[usize]) -> PathStats {
    let und = g.undirected_view();
    let mut sum = 0u64;
    let mut cnt = 0u64;
    let mut diameter = 0u32;
    let mut unreachable = 0u64;
    for &s in sources {
        let dist = bfs_distances(&und, s);
        for (v, &d) in dist.iter().enumerate() {
            if v == s {
                continue;
            }
            if d == u32::MAX {
                unreachable += 1;
            } else {
                sum += d as u64;
                cnt += 1;
                diameter = diameter.max(d);
            }
        }
    }
    PathStats {
        avg: if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        },
        diameter,
        unreachable_pairs: unreachable,
    }
}

/// Exact all-pairs path statistics (O(n·m); fine for n ≲ a few thousand).
pub fn path_stats_exact(g: &Graph) -> PathStats {
    let sources: Vec<usize> = (0..g.n()).collect();
    accumulate(g, &sources)
}

/// Sampled path statistics from `samples` random BFS sources. The average
/// is unbiased; the diameter is a lower bound.
pub fn path_stats_sampled(g: &Graph, samples: usize, seed: u64) -> PathStats {
    let n = g.n();
    if n == 0 {
        return PathStats {
            avg: 0.0,
            diameter: 0,
            unreachable_pairs: 0,
        };
    }
    if samples >= n {
        return path_stats_exact(g);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sources: Vec<usize> = Vec::with_capacity(samples);
    while sources.len() < samples {
        let s = rng.random_range(0..n);
        if !sources.contains(&s) {
            sources.push(s);
        }
    }
    accumulate(g, &sources)
}

/// Ring (cyclic rank) distance between positions `a` and `b` among `n`
/// equally ranked nodes: the paper's link *length* measure, counting
/// positions along the shorter arc.
pub fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let d = a.abs_diff(b);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_chain() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        // Directed: nothing reaches 0 from 3.
        let d3 = bfs_distances(&g, 3);
        assert_eq!(d3[0], u32::MAX);
    }

    #[test]
    fn cycle_diameter_is_half() {
        let g = cycle(10);
        let st = path_stats_exact(&g);
        assert_eq!(st.diameter, 5);
        assert_eq!(st.unreachable_pairs, 0);
        // Average distance on C10: (1+1+2+2+3+3+4+4+5)/9 = 25/9.
        assert!((st.avg - 25.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn chord_shrinks_average_path_length() {
        let base = path_stats_exact(&cycle(16));
        let mut g = cycle(16);
        g.add_edge(0, 8);
        let st = path_stats_exact(&g);
        // One chord cannot reduce the antipodal diameter of C16, but the
        // characteristic path length must drop (the small-world effect).
        assert!(
            st.avg < base.avg,
            "chord must shrink L: {} vs {}",
            st.avg,
            base.avg
        );
        let und = g.undirected_view();
        assert_eq!(bfs_distances(&und, 0)[8], 1);
    }

    #[test]
    fn sampled_stats_approximate_exact() {
        let g = cycle(64);
        let exact = path_stats_exact(&g);
        let sampled = path_stats_sampled(&g, 32, 7);
        // Vertex-transitive graph: per-source means are identical, so the
        // sampled average must match exactly.
        assert!((sampled.avg - exact.avg).abs() < 1e-9);
        assert!(sampled.diameter <= exact.diameter);
    }

    #[test]
    fn sampled_with_more_samples_than_nodes_is_exact() {
        let g = cycle(8);
        assert_eq!(path_stats_sampled(&g, 100, 1), path_stats_exact(&g));
    }

    #[test]
    fn disconnected_pairs_counted() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let st = path_stats_exact(&g);
        // 2 nodes in each component: 2·2·2 = 8 ordered unreachable pairs.
        assert_eq!(st.unreachable_pairs, 8);
        assert_eq!(st.diameter, 1);
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(0, 9, 10), 1);
        assert_eq!(ring_distance(2, 7, 10), 5);
        assert_eq!(ring_distance(3, 3, 10), 0);
        assert_eq!(ring_distance(0, 5, 10), 5);
        assert_eq!(ring_distance(1, 8, 10), 3);
    }
}
