//! Robustness story: the self-stabilized small world vs the structured
//! Chord overlay under random failures and targeted attacks — the
//! comparison the paper's introduction draws ("due to their uniform
//! structure, structured overlay networks are more vulnerable").
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use self_stabilizing_smallworld::baselines::chord::chord;
use self_stabilizing_smallworld::prelude::*;
use self_stabilizing_smallworld::topology::robustness::{sweep, FailureMode};
use swn_harness::testbed::harmonic_network;

fn main() {
    let n = 512;
    let cfg = ProtocolConfig::default();

    println!("== failure/attack resilience, n = {n} ==\n");

    // The self-stabilized overlay in its stationary state (harmonic
    // long-range links — what the protocol maintains long-term; a short
    // warmup would under-represent the link spread, see EXPERIMENTS.md E7).
    let net = harmonic_network(n, cfg, 3);
    let small_world = Graph::from_snapshot(&net.snapshot(), View::Cp);

    // The structured comparator.
    let chord_graph = chord(n);

    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "system", "mode", "removed", "giant frac", "routing ok"
    );
    for (label, graph) in [("small-world", &small_world), ("chord", &chord_graph)] {
        for mode in [FailureMode::Random, FailureMode::TargetedHighestDegree] {
            let pts = sweep(graph, &fractions, mode, 300, 99);
            for pt in pts {
                println!(
                    "{:<12} {:>8} {:>9.0}% {:>12.2} {:>12.2}",
                    label,
                    match mode {
                        FailureMode::Random => "random",
                        FailureMode::TargetedHighestDegree => "attack",
                    },
                    100.0 * pt.removed_frac,
                    pt.giant_frac,
                    pt.routing_success,
                );
            }
        }
        println!();
    }

    let sw_deg = small_world.undirected_view().m() as f64 / n as f64;
    let ch_deg = chord_graph.undirected_view().m() as f64 / n as f64;
    println!("mean degree: small-world {sw_deg:.1} vs chord {ch_deg:.1}");
    println!();
    println!("reading the table: the small world has no hubs, so a targeted attack");
    println!("buys the adversary almost nothing over random failure. Idealized Chord");
    println!("is more robust in absolute terms — it pays Θ(log n) links per node for");
    println!(
        "it ({:.0}x the state) — but that state is static: once fingers die they",
        ch_deg / sw_deg
    );
    println!("stay dead, while the self-stabilizing protocol continuously rebuilds");
    println!("its 3 links per node (see the overlay_churn example).");
}
