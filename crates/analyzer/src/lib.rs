//! Small-scope systematic interleaving checker for the protocol.
//!
//! The simulator and the threaded runtime each exercise *one* delivery
//! order per seed. This crate explores **all** of them, for networks small
//! enough to enumerate (n ≤ 5): starting from a seeded initial topology it
//! runs a depth-first search over every message-delivery order and
//! regular-action schedule, and checks on every transition that
//!
//! * the phase predicates of `swn_core::invariants` are **monotone** —
//!   weak connectivity of the CC view, `is_sorted_list` and
//!   `is_sorted_ring` are never true in a state and false in a successor
//!   (LCC connectivity is deliberately *not* monitored: a `lin` edge
//!   legitimately leaves the linearization view while its identifier rides
//!   an `lrl`/`ring` variable, so LCC flickers by design);
//! * no handler emits a **self-addressed message** — except the two
//!   declared self-delivery idioms of the lrl-at-origin loop: `inclrl`
//!   sent by `sendid` while the long-range token sits at its origin
//!   (`lrl = id`), and the `reslrl` a node sends back to itself when
//!   answering its own `inclrl` (how the token first leaves the origin);
//! * no single activation emits the same `(destination, message)` pair
//!   twice — probes excepted: Algorithm 10 launches a ring-target probe
//!   and an lrl probe in one activation, and when ring = lrl the two
//!   legitimately coincide (probes are idempotent);
//! * every [`ProtocolEvent`](swn_core::outbox::ProtocolEvent) a handler
//!   emits is **accounted for** by `swn_sim::trace::RoundStats` — folding
//!   it into a default `RoundStats` must change some counter.
//!
//! Randomness is factored out via [`Policy`]: handlers draw from a
//! constant word stream, so every branch of `move-forget` is itself
//! explored by running the search once per policy rather than per seed.
//!
//! The model is *small-scope* in three bounded dimensions: network size
//! (n ≤ 5), a per-node budget of regular actions (regular actions are
//! always enabled, so an unbounded schedule never quiesces), and a
//! channel-multiplicity bound — at the default bound of 1 channels are
//! *sets* and the transport coalesces identical in-flight messages to
//! one destination (see [`state::State::initial_bounded`]). Violations
//! found inside the scope are real executions; exhaustiveness is
//! relative to the scope, per the small-scope hypothesis.
//!
//! State explosion is tamed by exact-state memoization plus an optional
//! sleep-set partial-order reduction ([`explore::Reduction`]): two
//! transitions with distinct *actor* nodes commute (a delivery touches
//! only the receiver's variables and appends to channels; a regular
//! action reads no channel), and sleep sets prune only redundant
//! re-orderings of commuting transitions — every reachable state is still
//! visited, so the monitors lose nothing (Godefroid, chapter 4).
//!
//! A violation comes back as a transition trace from the initial state;
//! [`minimize`](minimize::minimize) shrinks it greedily (delta debugging
//! with chunk size 1) and [`format_trace`](minimize::format_trace) prints
//! the replay step by step.

#![forbid(unsafe_code)]

pub mod explore;
pub mod families;
pub mod liveness;
pub mod minimize;
pub mod ranking;
pub mod state;
pub mod stepper;
pub mod symmetry;

pub use explore::{ExploreConfig, ExploreReport, Explorer, FoundViolation, Reduction};
pub use families::Family;
pub use liveness::{
    check_closure, check_convergence, check_ranking, replay_states, validate_lasso, ClosureReport,
    ConvergenceReport, FairGraph, Lasso, RankingReport,
};
pub use minimize::{format_trace, minimize, minimize_lasso, minimize_with, replay};
pub use ranking::{rank_of, Rank, GOAL_RANK};
pub use state::{PredVector, State, Transition, Violation};
pub use stepper::{
    BounceLinStepper, DropLinStepper, Policy, PolicyRng, RealStepper, SelfEchoStepper, Stepper,
};
pub use symmetry::{canonical_key, AGE_SATURATION};
