//! A compact adjacency-list graph used by all analysis passes.
//!
//! Nodes are dense indices `0..n` (for protocol snapshots: the rank of the
//! node's identifier). The graph is directed; most metrics work on the
//! symmetrized [`undirected_view`](Graph::undirected_view).

use swn_core::views::{NetView, Snapshot, View};

/// A directed graph over `0..n` with adjacency lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    m: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "graph too large for u32 indices");
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph from a directed edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Extracts the given connectivity view of a protocol snapshot as a
    /// graph over **id ranks** (node 0 = smallest identifier), so ring
    /// distances are directly meaningful.
    pub fn from_snapshot(s: &Snapshot, view: View) -> Self {
        let order = s.sorted_indices();
        let mut rank_of = vec![0u32; s.len()];
        for (rank, &idx) in order.iter().enumerate() {
            rank_of[idx] = u32::try_from(rank).expect("graph rank fits u32");
        }
        let mut g = Graph::new(s.len());
        for (u, v) in s.edges(view) {
            g.add_edge(rank_of[u] as usize, rank_of[v] as usize);
        }
        g
    }

    /// Extracts the given connectivity view of a borrowed [`NetView`] as
    /// a graph over id ranks. The view is already in ascending id order,
    /// so its indices *are* ranks and the edges stream in with no rank
    /// table and no state clone — this is the zero-copy analogue of
    /// [`Graph::from_snapshot`].
    pub fn from_view(v: &NetView<'_>, view: View) -> Self {
        let mut g = Graph::new(v.len());
        v.for_each_edge(view, |u, w| {
            g.add_edge(u, w);
        });
        g
    }

    /// Adds a directed edge (parallel edges and self-loops are ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        let vv = u32::try_from(v).expect("graph node index fits u32");
        if !self.adj[u].contains(&vv) {
            self.adj[u].push(vv);
            self.m += 1;
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Out-neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The symmetrized graph: `u—v` present iff `u→v` or `v→u` was.
    pub fn undirected_view(&self) -> Graph {
        let mut g = Graph::new(self.n());
        for (u, vs) in self.adj.iter().enumerate() {
            for &v in vs {
                g.add_edge(u, v as usize);
                g.add_edge(v as usize, u);
            }
        }
        g
    }

    /// Iterates all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// Degree sequence (out-degrees).
    pub fn degree_sequence(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Removes a set of nodes (marked true in `removed`), returning the
    /// induced subgraph over the *same* index space with all incident
    /// edges dropped. Removed nodes stay as isolated indices so ranks
    /// remain stable for ring-distance computations.
    pub fn without_nodes(&self, removed: &[bool]) -> Graph {
        assert_eq!(removed.len(), self.n());
        let mut g = Graph::new(self.n());
        for (u, vs) in self.adj.iter().enumerate() {
            if removed[u] {
                continue;
            }
            for &v in vs {
                if !removed[v as usize] {
                    g.add_edge(u, v as usize);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swn_core::config::ProtocolConfig;
    use swn_core::id::evenly_spaced_ids;
    use swn_core::invariants::make_sorted_ring;

    #[test]
    fn dedup_and_no_self_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn undirected_view_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        let u = g.undirected_view();
        assert_eq!(u.m(), 4);
        assert!(u.neighbors(1).contains(&0));
        assert!(u.neighbors(1).contains(&2));
    }

    #[test]
    fn from_snapshot_ranks_by_id() {
        let ids = evenly_spaced_ids(5);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let s = swn_core::views::Snapshot::from_nodes(nodes);
        let g = Graph::from_snapshot(&s, View::Lcp);
        // Sorted list: rank i ↔ rank i+1.
        for i in 0..4 {
            assert!(
                g.neighbors(i)
                    .contains(&u32::try_from(i + 1).expect("fits u32")),
                "missing {i}→{}",
                i + 1
            );
            assert!(g
                .neighbors(i + 1)
                .contains(&u32::try_from(i).expect("fits u32")));
        }
        let r = Graph::from_snapshot(&s, View::Rcp);
        assert!(r.neighbors(0).contains(&4), "ring edge min→max");
        assert!(r.neighbors(4).contains(&0));
    }

    #[test]
    fn from_view_matches_from_snapshot() {
        let ids = evenly_spaced_ids(9);
        let nodes = make_sorted_ring(&ids, ProtocolConfig::default());
        let s = swn_core::views::Snapshot::from_nodes(nodes);
        for view in [
            View::Cp,
            View::Cc,
            View::Lcp,
            View::Lcc,
            View::Rcp,
            View::Rcc,
        ] {
            let a = Graph::from_snapshot(&s, view);
            let b = Graph::from_view(&s.as_view(), view);
            assert_eq!(a.n(), b.n(), "{view:?}");
            let mut ea: Vec<_> = a.edges().collect();
            let mut eb: Vec<_> = b.edges().collect();
            ea.sort_unstable();
            eb.sort_unstable();
            assert_eq!(ea, eb, "{view:?}");
        }
    }

    #[test]
    fn without_nodes_isolates_removed() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let removed = vec![false, true, false, false];
        let h = g.without_nodes(&removed);
        assert_eq!(h.out_degree(1), 0);
        assert!(!h.neighbors(0).contains(&1));
        assert!(h.neighbors(2).contains(&3));
        assert_eq!(h.n(), 4, "index space preserved");
    }

    #[test]
    fn edges_iterator_counts_m() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.edges().count(), g.m());
    }
}
