//! Ring-edge maintenance: `respondring` (Algorithm 7) and `updatering`
//! (Algorithm 8).
//!
//! The move-and-forget process needs a *ring*, not a list, so the extremal
//! nodes keep a ring edge pointing at the opposite end: in the stable
//! state `min.ring = max` and `max.ring = min`. A node missing a
//! neighbour advertises itself over its ring edge (`ring` message,
//! Algorithm 9); the receiver either helps the sender linearize (when the
//! sender is not really extremal) or answers with a *better* ring-edge
//! candidate (`resring`), walking the ring edge toward the true extremum.

use crate::id::{Extended, NodeId};
use crate::message::Message;
use crate::node::Node;
use crate::outbox::Outbox;

impl Node {
    /// `respondring(id)` — Algorithm 7. `id` believes it is an extremal
    /// node and its ring edge points at us.
    ///
    /// The paper's `id > p` case forwards `p.l` when `p.r > id`, which by
    /// symmetry with the `id < p` case must be `p.r` (DESIGN.md deviation
    /// #2). Where the pseudocode would send a `±∞` sentinel (impossible on
    /// the wire), the identifier is handled locally via `linearize`, which
    /// preserves the link.
    pub(crate) fn respond_ring(&mut self, id: NodeId, out: &mut Outbox) {
        let me = self.id();
        if id == me {
            return;
        }
        if id < me {
            // Sender is a minimum candidate; its ring edge must end at the
            // true maximum. Either help it linearize (it is not extremal /
            // not adjacent to us) or walk its ring edge rightward.
            if self.l < id {
                match self.l {
                    Extended::Fin(lv) => out.send(id, Message::Lin(lv)),
                    // We know nothing smaller: id belongs to our left side.
                    _ => self.linearize(id, out),
                }
            } else if self.lrl < id {
                out.send(id, Message::Lin(self.lrl));
            } else if Extended::Fin(self.lrl) > self.r {
                out.send(id, Message::ResRing(self.lrl));
            } else if let Extended::Fin(rv) = self.r {
                out.send(id, Message::ResRing(rv));
            }
            // r = +∞: we are the maximum candidate; the sender's ring edge
            // already points at the right place — nothing to improve.
        } else {
            // Sender is a maximum candidate; walk its ring edge leftward.
            if self.r > id {
                match self.r {
                    Extended::Fin(rv) => out.send(id, Message::Lin(rv)),
                    _ => self.linearize(id, out),
                }
            } else if self.lrl > id {
                out.send(id, Message::Lin(self.lrl));
            } else if Extended::Fin(self.lrl) < self.l {
                out.send(id, Message::ResRing(self.lrl));
            } else if let Extended::Fin(lv) = self.l {
                out.send(id, Message::ResRing(lv));
            }
        }
    }

    /// `updatering(id)` — Algorithm 8. Adopt a better ring-edge candidate:
    /// the minimum candidate's ring edge only ever moves right (toward the
    /// maximum), the maximum candidate's only left. Candidates are always
    /// copies of links still stored at the responder, so ignoring a
    /// non-improving candidate cannot disconnect the network.
    pub(crate) fn update_ring(&mut self, cand: NodeId) {
        let me = self.id();
        if cand == me {
            return;
        }
        if self.l.is_neg_inf() {
            // Minimum candidate: ring must point right and only improves
            // rightward. An unset/wrong-sided ring counts as "at me".
            let current = self.ring().filter(|&x| x > me);
            if cand > me && current.is_none_or(|cur| cand > cur) {
                self.set_ring(Some(cand));
            }
        } else if self.r.is_pos_inf() {
            let current = self.ring().filter(|&x| x < me);
            if cand < me && current.is_none_or(|cur| cand < cur) {
                self.set_ring(Some(cand));
            }
        }
        // Interior node: stale resring, ignore (the candidate is still
        // stored at the responder).
    }

    pub(crate) fn set_ring(&mut self, ring: Option<NodeId>) {
        self.ring = ring;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;

    fn id(f: f64) -> NodeId {
        NodeId::from_fraction(f)
    }

    fn node(l: Option<f64>, me: f64, r: Option<f64>, lrl: f64, ring: Option<f64>) -> Node {
        Node::with_state(
            id(me),
            l.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::NegInf),
            r.map(|f| Extended::Fin(id(f))).unwrap_or(Extended::PosInf),
            id(lrl),
            ring.map(id),
            ProtocolConfig::default(),
        )
    }

    // ---- respondring, id < p (sender is a minimum candidate) ----

    #[test]
    fn helps_nonextremal_sender_linearize_via_left_neighbour() {
        // p.l = 0.2 < id = 0.3: the sender belongs between 0.2 and us.
        let mut n = node(Some(0.2), 0.5, Some(0.7), 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert_eq!(out.sends(), &[(id(0.3), Message::Lin(id(0.2)))]);
    }

    #[test]
    fn adopts_smaller_sender_when_we_have_no_left() {
        // We are a minimum candidate ourselves but a smaller node exists:
        // adopt it (the paper's branch would send −∞, impossible).
        let mut n = node(None, 0.5, Some(0.7), 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert_eq!(n.left(), Extended::Fin(id(0.3)));
    }

    #[test]
    fn forwards_lrl_as_lin_when_between() {
        // p.l ≥ id but lrl = 0.2 < id = 0.3: sender learns about 0.2.
        let mut n = node(Some(0.4), 0.5, Some(0.7), 0.2, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert_eq!(out.sends(), &[(id(0.3), Message::Lin(id(0.2)))]);
    }

    #[test]
    fn answers_lrl_as_ring_candidate_when_right_shortcut() {
        // lrl = 0.9 > r = 0.7: the minimum's ring edge can jump to 0.9.
        let mut n = node(Some(0.4), 0.5, Some(0.7), 0.9, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert_eq!(out.sends(), &[(id(0.3), Message::ResRing(id(0.9)))]);
    }

    #[test]
    fn answers_right_neighbour_as_ring_candidate() {
        let mut n = node(Some(0.4), 0.5, Some(0.7), 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert_eq!(out.sends(), &[(id(0.3), Message::ResRing(id(0.7)))]);
    }

    #[test]
    fn max_candidate_does_not_answer_min_sender() {
        // We have r = +∞ (true maximum candidate): the sender's ring edge
        // already ends at the right place.
        let mut n = node(Some(0.4), 0.9, None, 0.9, Some(0.3));
        let mut out = Outbox::new();
        n.respond_ring(id(0.3), &mut out);
        assert!(out.sends().is_empty());
    }

    // ---- respondring, id > p (sender is a maximum candidate) ----

    #[test]
    fn helps_nonextremal_max_sender_linearize() {
        // Deviation #2: send p.r (not the paper's p.l) when p.r > id.
        let mut n = node(Some(0.2), 0.5, Some(0.9), 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.7), &mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::Lin(id(0.9)))]);
    }

    #[test]
    fn adopts_larger_sender_when_we_have_no_right() {
        let mut n = node(Some(0.2), 0.5, None, 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.7), &mut out);
        assert_eq!(n.right(), Extended::Fin(id(0.7)));
    }

    #[test]
    fn forwards_bigger_lrl_to_max_sender() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.8, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.7), &mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::Lin(id(0.8)))]);
    }

    #[test]
    fn answers_lrl_as_ring_candidate_when_left_shortcut() {
        // lrl = 0.1 < l = 0.2: the maximum's ring edge can jump to 0.1.
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.1, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.7), &mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::ResRing(id(0.1)))]);
    }

    #[test]
    fn answers_left_neighbour_as_ring_candidate_to_max_sender() {
        let mut n = node(Some(0.2), 0.5, Some(0.6), 0.5, None);
        let mut out = Outbox::new();
        n.respond_ring(id(0.7), &mut out);
        assert_eq!(out.sends(), &[(id(0.7), Message::ResRing(id(0.2)))]);
    }

    // ---- updatering ----

    #[test]
    fn min_ring_moves_right_only() {
        let mut n = node(None, 0.1, Some(0.3), 0.1, Some(0.5));
        n.update_ring(id(0.8));
        assert_eq!(n.ring(), Some(id(0.8)), "better candidate adopted");
        n.update_ring(id(0.4));
        assert_eq!(n.ring(), Some(id(0.8)), "worse candidate ignored");
        n.update_ring(id(0.05));
        assert_eq!(n.ring(), Some(id(0.8)), "wrong-sided candidate ignored");
    }

    #[test]
    fn max_ring_moves_left_only() {
        let mut n = node(Some(0.7), 0.9, None, 0.9, Some(0.5));
        n.update_ring(id(0.2));
        assert_eq!(n.ring(), Some(id(0.2)));
        n.update_ring(id(0.4));
        assert_eq!(n.ring(), Some(id(0.2)));
        n.update_ring(id(0.95));
        assert_eq!(n.ring(), Some(id(0.2)));
    }

    #[test]
    fn unset_ring_accepts_first_valid_candidate() {
        let mut n = node(None, 0.1, Some(0.3), 0.1, None);
        n.update_ring(id(0.6));
        assert_eq!(n.ring(), Some(id(0.6)));
    }

    #[test]
    fn interior_node_ignores_resring() {
        let mut n = node(Some(0.3), 0.5, Some(0.7), 0.5, None);
        n.update_ring(id(0.9));
        assert_eq!(n.ring(), None);
    }

    #[test]
    fn n2_network_forms_ring_via_respond_and_update() {
        // Two nodes already linearized: each is extremal; ring messages
        // should lead to min.ring = max and max.ring = min via bootstrap.
        let mut a = node(None, 0.2, Some(0.8), 0.2, None);
        let mut b = node(Some(0.2), 0.8, None, 0.8, None);
        let mut out = Outbox::new();
        a.on_regular(&mut out); // bootstraps a.ring = 0.8, sends Ring(0.2) to 0.8
        assert_eq!(a.ring(), Some(id(0.8)));
        let ring_msgs: Vec<_> = out
            .sends()
            .iter()
            .filter(|(_, m)| matches!(m, Message::Ring(_)))
            .cloned()
            .collect();
        assert_eq!(ring_msgs, vec![(id(0.8), Message::Ring(id(0.2)))]);
        // b answers: b.r = +∞ and sender < b ⇒ silence (already optimal);
        let mut out_b = Outbox::new();
        b.respond_ring(id(0.2), &mut out_b);
        assert!(out_b.sends().is_empty());
        // b's own regular action bootstraps its ring edge to 0.2.
        let mut out_b2 = Outbox::new();
        b.on_regular(&mut out_b2);
        assert_eq!(b.ring(), Some(id(0.2)));
    }
}
