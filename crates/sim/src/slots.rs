//! Dense id→slot index: O(1) message routing plus an incrementally
//! maintained sorted order for the step engine.
//!
//! The simulator stores nodes and channels in slot vectors; every send
//! must map a destination [`NodeId`] to its slot. A `BTreeMap` lookup
//! costs O(log n) pointer chases per message, which PR 3's profiling put
//! squarely on the hot path (several lookups per node per round). This
//! index keeps **two** synchronized structures:
//!
//! * an open-addressing hash table (fibonacci hashing, linear probing,
//!   backward-shift deletion) answering [`SlotIndex::get`] in O(1) with
//!   no per-entry allocation — the routing path;
//! * two parallel sorted lanes (`sorted_ids`, `sorted_slots`) holding the
//!   entries in ascending id order — `ids()`, snapshots, views and the
//!   round-order materialization read these flat slices directly. The
//!   lanes are maintained *incrementally*: insert and remove locate the
//!   rank by binary search and splice in place, so the ordered view is
//!   always current and the round loop's order build is a memcpy of
//!   [`SlotIndex::sorted_slots`] instead of a tree walk (let alone a
//!   rebuild).
//!
//! The hash table is **never iterated**, so its (hash-dependent, hence
//! insertion-order-dependent) internal layout can never leak into the
//! simulation: determinism rests on the sorted lanes, whose content is a
//! pure function of the live id set. Splicing a `Vec` is O(n) per
//! mutation in the worst case, but churn is rare relative to routing and
//! the memmove is a flat `u64`/`usize` shift — measured faster than
//! BTreeMap maintenance well past n = 10⁶ (`BENCH_scale.json`). Bulk
//! construction ([`SlotIndex::from_pairs`]) sorts once instead of
//! splicing n times, keeping million-node network builds O(n log n) and,
//! for pre-sorted input, effectively linear. Slot churn is the dangerous
//! case — `remove_node` pushes a slot onto a free list and a later
//! insert reuses it for a *different* id — and is covered by a proptest
//! pitting this index against a `BTreeMap` oracle over random
//! insert/remove/lookup sequences (`tests/slot_index_prop.rs`).

use swn_core::id::NodeId;

/// Initial hash-table capacity (power of two).
const INITIAL_CAPACITY: usize = 16;

/// An id→slot map with O(1) lookup and ordered iteration.
#[derive(Clone, Debug)]
pub struct SlotIndex {
    /// Ids in ascending order — authoritative for iteration and length.
    sorted_ids: Vec<NodeId>,
    /// Slot of `sorted_ids[rank]`, same order: the round loop's
    /// activation order is a copy of this lane.
    sorted_slots: Vec<usize>,
    /// Open-addressing table, power-of-two length, load factor ≤ 1/2.
    table: Vec<Option<(NodeId, usize)>>,
}

impl Default for SlotIndex {
    fn default() -> Self {
        SlotIndex::new()
    }
}

impl SlotIndex {
    /// An empty index.
    pub fn new() -> Self {
        SlotIndex {
            sorted_ids: Vec::new(),
            sorted_slots: Vec::new(),
            table: vec![None; INITIAL_CAPACITY],
        }
    }

    /// Bulk construction from arbitrary-order pairs: sorts once and
    /// builds the hash table at final size, instead of splicing the
    /// sorted lanes entry by entry. Returns the first duplicate id as
    /// `Err`. Already-ascending input (the common generator output)
    /// costs one verification pass plus table fills.
    pub fn from_pairs(mut pairs: Vec<(NodeId, usize)>) -> Result<Self, NodeId> {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        if let Some(w) = pairs.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(w[0].0);
        }
        let mut cap = INITIAL_CAPACITY;
        while (pairs.len() + 1) * 2 > cap {
            cap *= 2;
        }
        let mut table = vec![None; cap];
        for &(id, slot) in &pairs {
            Self::raw_insert(&mut table, id, slot);
        }
        let (sorted_ids, sorted_slots) = pairs.into_iter().unzip();
        Ok(SlotIndex {
            sorted_ids,
            sorted_slots,
            table,
        })
    }

    /// Fibonacci hashing: the high bits of `bits · φ⁻¹·2⁶⁴` mapped onto
    /// the power-of-two table. High bits, because the low bits of a
    /// multiplicative hash depend only on the low bits of the key.
    #[inline]
    fn home(bits: u64, table_len: usize) -> usize {
        let h = bits.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // The shift leaves log2(table_len) bits, which fit usize.
        #[allow(clippy::cast_possible_truncation)]
        {
            (h >> (64 - table_len.trailing_zeros())) as usize
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.sorted_ids.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted_ids.is_empty()
    }

    /// O(1) slot lookup — the message-routing hot path.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = Self::home(id.bits(), self.table.len());
        loop {
            match self.table[i] {
                None => return None,
                Some((k, slot)) if k == id => return Some(slot),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// True when `id` is present.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts `id → slot`. Returns false (and changes nothing) when the
    /// id is already present. The sorted lanes are spliced at the
    /// binary-searched rank, so ascending insertion is an amortized O(1)
    /// append.
    pub fn insert(&mut self, id: NodeId, slot: usize) -> bool {
        let Err(rank) = self.sorted_ids.binary_search(&id) else {
            return false;
        };
        self.sorted_ids.insert(rank, id);
        self.sorted_slots.insert(rank, slot);
        if (self.sorted_ids.len() + 1) * 2 > self.table.len() {
            self.grow();
        }
        Self::raw_insert(&mut self.table, id, slot);
        true
    }

    /// Removes `id`, returning its slot.
    pub fn remove(&mut self, id: NodeId) -> Option<usize> {
        let rank = self.sorted_ids.binary_search(&id).ok()?;
        self.sorted_ids.remove(rank);
        let slot = self.sorted_slots.remove(rank);
        let mask = self.table.len() - 1;
        let mut i = Self::home(id.bits(), self.table.len());
        // The entry exists (the sorted lane had it), so this terminates.
        while self.table[i].is_none_or(|(k, _)| k != id) {
            i = (i + 1) & mask;
        }
        self.table[i] = None;
        // Backward-shift deletion: close the hole so later probes never
        // stop early at it. An occupied entry at j moves into the hole at
        // i exactly when i lies cyclically within [home(j-entry), j].
        let mut j = (i + 1) & mask;
        while let Some((k, s)) = self.table[j] {
            let h = Self::home(k.bits(), self.table.len());
            if j.wrapping_sub(h) & mask >= j.wrapping_sub(i) & mask {
                self.table[i] = Some((k, s));
                self.table[j] = None;
                i = j;
            }
            j = (j + 1) & mask;
        }
        Some(slot)
    }

    /// The ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sorted_ids.iter().copied()
    }

    /// The slots in ascending *id* order — the deterministic traversal
    /// the round loop, snapshots and views are built from.
    pub fn slots_by_id(&self) -> impl Iterator<Item = usize> + '_ {
        self.sorted_slots.iter().copied()
    }

    /// The ids in ascending order, as a flat slice.
    pub fn sorted_ids(&self) -> &[NodeId] {
        &self.sorted_ids
    }

    /// The slots in ascending id order, as a flat slice — the round
    /// loop's activation order is `memcpy`'d from here.
    pub fn sorted_slots(&self) -> &[usize] {
        &self.sorted_slots
    }

    /// The rank of `id` in the ascending order, when present.
    pub fn rank_of(&self, id: NodeId) -> Option<usize> {
        self.sorted_ids.binary_search(&id).ok()
    }

    /// The smallest live id — O(1) off the sorted lane.
    pub fn min_id(&self) -> Option<NodeId> {
        self.sorted_ids.first().copied()
    }

    /// The largest live id — O(1) off the sorted lane.
    pub fn max_id(&self) -> Option<NodeId> {
        self.sorted_ids.last().copied()
    }

    fn grow(&mut self) {
        let mut table = vec![None; self.table.len() * 2];
        for entry in self.table.iter().flatten() {
            Self::raw_insert(&mut table, entry.0, entry.1);
        }
        self.table = table;
    }

    fn raw_insert(table: &mut [Option<(NodeId, usize)>], id: NodeId, slot: usize) {
        let mask = table.len() - 1;
        let mut i = Self::home(id.bits(), table.len());
        while table[i].is_some() {
            i = (i + 1) & mask;
        }
        table[i] = Some((id, slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(bits: u64) -> NodeId {
        NodeId::from_bits(bits)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = SlotIndex::new();
        assert!(idx.is_empty());
        assert!(idx.insert(id(10), 0));
        assert!(idx.insert(id(5), 1));
        assert!(!idx.insert(id(10), 9), "duplicate insert must be refused");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(id(10)), Some(0));
        assert_eq!(idx.get(id(5)), Some(1));
        assert_eq!(idx.get(id(7)), None);
        assert_eq!(idx.remove(id(10)), Some(0));
        assert_eq!(idx.remove(id(10)), None);
        assert_eq!(idx.get(id(10)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn ordered_iteration_is_ascending_by_id() {
        let mut idx = SlotIndex::new();
        for (slot, bits) in [40u64, 7, 99, 23].into_iter().enumerate() {
            idx.insert(id(bits), slot);
        }
        let ids: Vec<u64> = idx.ids().map(NodeId::bits).collect();
        assert_eq!(ids, vec![7, 23, 40, 99]);
        // Slots follow the id order, not insertion order.
        let slots: Vec<usize> = idx.slots_by_id().collect();
        assert_eq!(slots, vec![1, 3, 0, 2]);
        assert_eq!(idx.sorted_slots(), &[1, 3, 0, 2]);
        assert_eq!(idx.min_id(), Some(id(7)));
        assert_eq!(idx.max_id(), Some(id(99)));
        assert_eq!(idx.rank_of(id(40)), Some(2));
        assert_eq!(idx.rank_of(id(41)), None);
    }

    #[test]
    fn survives_growth_past_many_rehashes() {
        let mut idx = SlotIndex::new();
        for k in 0..1000usize {
            assert!(idx.insert(id(k as u64 * 0x1_0001), k));
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000usize {
            assert_eq!(idx.get(id(k as u64 * 0x1_0001)), Some(k));
        }
    }

    #[test]
    fn backward_shift_keeps_probe_chains_intact() {
        // Fill enough keys that probe chains form, then delete from the
        // middle of chains and verify every survivor is still found.
        let keys: Vec<u64> = (0..256u64).map(|k| k.wrapping_mul(0x9e3779b9)).collect();
        let mut idx = SlotIndex::new();
        for (slot, &k) in keys.iter().enumerate() {
            idx.insert(id(k), slot);
        }
        for (slot, &k) in keys.iter().enumerate() {
            if slot % 3 == 0 {
                assert_eq!(idx.remove(id(k)), Some(slot));
            }
        }
        for (slot, &k) in keys.iter().enumerate() {
            let expect = if slot % 3 == 0 { None } else { Some(slot) };
            assert_eq!(idx.get(id(k)), expect, "key {k} after deletions");
        }
    }

    #[test]
    fn slot_reuse_after_remove_reroutes_to_the_new_owner() {
        // The churn pattern the network uses: a removed node's slot is
        // recycled for a different id; lookups must route to the new id
        // only.
        let mut idx = SlotIndex::new();
        idx.insert(id(1), 0);
        idx.insert(id(2), 1);
        assert_eq!(idx.remove(id(1)), Some(0));
        idx.insert(id(3), 0); // reuse slot 0
        assert_eq!(idx.get(id(1)), None);
        assert_eq!(idx.get(id(3)), Some(0));
        assert_eq!(idx.get(id(2)), Some(1));
    }

    #[test]
    fn bulk_build_matches_incremental_build() {
        let pairs: Vec<(NodeId, usize)> = [40u64, 7, 99, 23]
            .into_iter()
            .enumerate()
            .map(|(slot, bits)| (id(bits), slot))
            .collect();
        let bulk = SlotIndex::from_pairs(pairs.clone()).expect("no duplicates");
        let mut inc = SlotIndex::new();
        for &(nid, slot) in &pairs {
            assert!(inc.insert(nid, slot));
        }
        assert_eq!(bulk.sorted_ids(), inc.sorted_ids());
        assert_eq!(bulk.sorted_slots(), inc.sorted_slots());
        for &(nid, slot) in &pairs {
            assert_eq!(bulk.get(nid), Some(slot));
        }
        assert_eq!(bulk.get(id(8)), None);
    }

    #[test]
    fn bulk_build_reports_duplicates() {
        let pairs = vec![(id(3), 0), (id(9), 1), (id(3), 2)];
        assert_eq!(SlotIndex::from_pairs(pairs).map(|_| ()), Err(id(3)));
    }

    #[test]
    fn bulk_build_sizes_table_for_load_factor() {
        // 1000 entries must land in a table big enough that inserting a
        // few more keeps the load factor ≤ 1/2 without an early grow.
        let pairs: Vec<(NodeId, usize)> = (0..1000usize)
            .map(|k| (id(k as u64 * 0x1_0001), k))
            .collect();
        let mut idx = SlotIndex::from_pairs(pairs).expect("no duplicates");
        for k in 0..1000usize {
            assert_eq!(idx.get(id(k as u64 * 0x1_0001)), Some(k));
        }
        assert!(idx.insert(id(7), 1000));
        assert_eq!(idx.get(id(7)), Some(1000));
    }
}
